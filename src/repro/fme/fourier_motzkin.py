"""Rational Fourier–Motzkin elimination.

Classic FME ([3] in the paper): to eliminate variable ``x`` from a set of
inequalities, pair every lower bound on ``x`` with every upper bound and
add their positive combination.  The resulting system is feasible over
the rationals iff the original one is.  The Omega-style integer test in
:mod:`repro.fme.omega` builds on this.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.fme.linear import LinearConstraint


def eliminate_variable(
    constraints: Iterable[LinearConstraint], var: int
) -> Optional[List[LinearConstraint]]:
    """Eliminate ``var`` from a pure-inequality system.

    Returns the projected system, or ``None`` when a trivially false
    constraint appears (the system is rationally infeasible).
    """
    uppers: List[LinearConstraint] = []   # positive coefficient on var
    lowers: List[LinearConstraint] = []   # negative coefficient on var
    rest: List[LinearConstraint] = []
    for constraint in constraints:
        assert not constraint.equality, "eliminate equalities first"
        coeff = constraint.coeff_of(var)
        if coeff > 0:
            uppers.append(constraint)
        elif coeff < 0:
            lowers.append(constraint)
        else:
            rest.append(constraint)

    result: List[LinearConstraint] = list(rest)
    seen: Set[Tuple] = {(c.coeffs, c.constant) for c in rest}
    for upper in uppers:
        p = upper.coeff_of(var)
        for lower in lowers:
            q = -lower.coeff_of(var)
            # q * upper + p * lower eliminates var.
            merged: Dict[int, int] = {}
            for v, c in upper.coeffs:
                if v != var:
                    merged[v] = merged.get(v, 0) + q * c
            for v, c in lower.coeffs:
                if v != var:
                    merged[v] = merged.get(v, 0) + p * c
            constant = q * upper.constant + p * lower.constant
            combined = LinearConstraint.make(merged, constant)
            combined = combined.normalized()
            assert combined is not None  # inequalities always normalise
            if combined.trivially_false:
                return None
            if combined.trivially_true:
                continue
            key = (combined.coeffs, combined.constant)
            if key not in seen:
                seen.add(key)
                result.append(combined)
    return result


def _cheapest_variable(constraints: List[LinearConstraint]) -> Optional[int]:
    """Pick the elimination variable minimising the pair product."""
    uppers: Dict[int, int] = {}
    lowers: Dict[int, int] = {}
    for constraint in constraints:
        for var, coeff in constraint.coeffs:
            if coeff > 0:
                uppers[var] = uppers.get(var, 0) + 1
            else:
                lowers[var] = lowers.get(var, 0) + 1
    variables = set(uppers) | set(lowers)
    if not variables:
        return None
    return min(
        variables,
        key=lambda v: uppers.get(v, 0) * lowers.get(v, 0),
    )


def rational_feasible(constraints: Iterable[LinearConstraint]) -> bool:
    """Feasibility of a pure-inequality system over the rationals."""
    current: List[LinearConstraint] = []
    for constraint in constraints:
        if constraint.trivially_false:
            return False
        if not constraint.is_trivial:
            current.append(constraint)
    while True:
        var = _cheapest_variable(current)
        if var is None:
            return True
        projected = eliminate_variable(current, var)
        if projected is None:
            return False
        current = projected


def variable_bounds_after_projection(
    constraints: List[LinearConstraint], var: int
) -> Optional[Tuple[Optional[int], Optional[int]]]:
    """Integer bounds on ``var`` once every other variable is projected out.

    Returns ``(lo, hi)`` (either side may be ``None`` for unbounded), or
    ``None`` when the system is rationally infeasible.  Used for witness
    extraction: any integer in the range extends to a rational solution.
    """
    current = [c for c in constraints if not c.is_trivial]
    if any(c.trivially_false for c in constraints):
        return None
    while True:
        other_vars = {
            v for c in current for v in c.variables() if v != var
        }
        if not other_vars:
            break
        target = min(
            other_vars,
            key=lambda v: sum(1 for c in current if c.coeff_of(v) != 0),
        )
        projected = eliminate_variable(current, target)
        if projected is None:
            return None
        current = projected
    lo: Optional[int] = None
    hi: Optional[int] = None
    for constraint in current:
        coeff = constraint.coeff_of(var)
        if coeff == 0:
            if constraint.trivially_false:
                return None
            continue
        if coeff > 0:
            # c*x <= k with c > 0: x <= floor(k / c).
            bound = constraint.constant // coeff
            hi = bound if hi is None else min(hi, bound)
        else:
            # c*x <= k with c < 0: x >= ceil(k / c).
            bound = -((-constraint.constant) // coeff)
            lo = bound if lo is None else max(lo, bound)
    if lo is not None and hi is not None and lo > hi:
        return None
    return lo, hi
