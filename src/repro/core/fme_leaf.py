"""Leaf certification: does the solution box contain an integer point?

When deduction reaches a fixpoint with every decision variable assigned,
HDPLL checks the bounds-consistent solution box with an integer-linear
solver (Algorithm 1 / Section 2.4).  This module collects the linear
system that is *active* under the current control assignments:

* every compiled arithmetic equality (always active),
* each comparator whose predicate variable is assigned (an inequality,
  equality or disequality on its operands),
* each mux whose select is assigned (an equality with the chosen branch).

Variables already pinned to a point by propagation are substituted away,
and the remainder is split into independent connected components, each
decided by :class:`repro.fme.OmegaSolver`.  This decomposition is what
keeps leaf checks tractable on deep BMC unrollings.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.constraints.compile import CompiledSystem
from repro.constraints.propagators import (
    ComparatorProp,
    LinearEqProp,
    MuxProp,
)
from repro.constraints.store import DomainStore
from repro.fme.linear import LinearConstraint
from repro.fme.omega import OmegaSolver
from repro.rtl.types import OpKind

logger = logging.getLogger(__name__)


@dataclass
class LeafCheckResult:
    """Outcome of a solution-box certification."""

    feasible: bool
    #: var index -> value for every solver variable (feasible only).
    witness: Dict[int, int] = field(default_factory=dict)
    components: int = 0
    constraints: int = 0
    #: On infeasibility: the variables of the refuted component and the
    #: propagators whose activation contributed its constraints — the
    #: arithmetic "resolvent" the conflict analysis traces back through
    #: the hybrid implication graph.
    failing_var_indices: frozenset = frozenset()
    failing_sources: tuple = ()


def _comparator_constraints(
    prop: ComparatorProp, value: int
) -> Tuple[List[LinearConstraint], List[LinearConstraint]]:
    """Linear encoding of a comparator under an assigned predicate."""
    x, y = prop.x.index, prop.y.index
    # Accumulate so that identical operands (e.g. "a != a") cancel.
    difference: Dict[int, int] = {}
    difference[x] = difference.get(x, 0) + 1
    difference[y] = difference.get(y, 0) - 1
    negated = {var: -coeff for var, coeff in difference.items()}
    constraints: List[LinearConstraint] = []
    disequalities: List[LinearConstraint] = []
    kind = prop.kind
    if kind is OpKind.EQ:
        if value:
            constraints.append(LinearConstraint.eq(difference, 0))
        else:
            disequalities.append(LinearConstraint.eq(difference, 0))
    elif kind is OpKind.NE:
        if value:
            disequalities.append(LinearConstraint.eq(difference, 0))
        else:
            constraints.append(LinearConstraint.eq(difference, 0))
    elif kind is OpKind.LT:
        if value:
            constraints.append(LinearConstraint.le(difference, -1))
        else:
            constraints.append(LinearConstraint.le(negated, 0))
    else:  # LE
        if value:
            constraints.append(LinearConstraint.le(difference, 0))
        else:
            constraints.append(LinearConstraint.le(negated, -1))
    return constraints, disequalities


def collect_tagged_system(
    store: DomainStore, system: CompiledSystem
) -> List[Tuple[LinearConstraint, bool, Optional[object]]]:
    """Active constraints as (constraint, is_disequality, source_prop).

    The source is the comparator/mux whose control assignment activated
    the constraint (None for always-active arithmetic equalities); it is
    what FME-conflict analysis traces back through the implication graph.
    """
    tagged: List[Tuple[LinearConstraint, bool, Optional[object]]] = []
    for prop in system.propagators:
        if isinstance(prop, LinearEqProp):
            coeffs: Dict[int, int] = {}
            for coeff, var in zip(prop.coeffs, prop.variables):
                coeffs[var.index] = coeffs.get(var.index, 0) + coeff
            tagged.append(
                (LinearConstraint.eq(coeffs, prop.constant), False, None)
            )
        elif isinstance(prop, ComparatorProp):
            value = store.bool_value(prop.pred)
            if value is None:
                continue
            new_cons, new_diseqs = _comparator_constraints(prop, value)
            for constraint in new_cons:
                tagged.append((constraint, False, prop))
            for diseq in new_diseqs:
                tagged.append((diseq, True, prop))
        elif isinstance(prop, MuxProp):
            sel_value = store.bool_value(prop.sel)
            if sel_value is None:
                continue
            branch = prop.then_var if sel_value else prop.else_var
            tagged.append(
                (
                    LinearConstraint.eq(
                        {prop.out.index: 1, branch.index: -1}, 0
                    ),
                    False,
                    prop,
                )
            )
    return tagged


def collect_active_system(
    store: DomainStore, system: CompiledSystem
) -> Tuple[List[LinearConstraint], List[LinearConstraint]]:
    """All active linear constraints and disequalities, by var index."""
    constraints: List[LinearConstraint] = []
    disequalities: List[LinearConstraint] = []
    for constraint, is_diseq, _source in collect_tagged_system(store, system):
        (disequalities if is_diseq else constraints).append(constraint)
    return constraints, disequalities


class _UnionFind:
    def __init__(self):
        self.parent: Dict[int, int] = {}

    def find(self, item: int) -> int:
        root = item
        while self.parent.setdefault(root, root) != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        self.parent[self.find(a)] = self.find(b)


def check_solution_box(
    store: DomainStore,
    system: CompiledSystem,
    branch_budget: int = 200_000,
) -> LeafCheckResult:
    """Certify or refute the current solution box.

    Returns a feasible result with a *complete* witness (every solver
    variable mapped to an in-domain value satisfying every active
    constraint), or an infeasible result.
    """
    tagged = collect_tagged_system(store, system)

    # Substitute variables propagation has already pinned.
    def pinned(var_index: int) -> Optional[int]:
        domain = store.domains[var_index]
        return domain.lo if domain.is_point else None

    # live entries: (reduced constraint, is_diseq, source, original vars).
    live: List[Tuple[LinearConstraint, bool, Optional[object], Tuple[int, ...]]] = []
    for constraint, is_diseq, source in tagged:
        original_vars = constraint.variables()
        current = constraint
        for var in original_vars:
            value = pinned(var)
            if value is not None:
                current = current.substitute(var, value)
        if current.is_trivial:
            if is_diseq:
                # The disequality asserts sum != constant; with every
                # variable substituted the residual sum is 0.
                satisfied = current.constant != 0
            else:
                satisfied = current.trivially_true
            if not satisfied:
                return LeafCheckResult(
                    feasible=False,
                    failing_var_indices=frozenset(original_vars),
                    failing_sources=(source,) if source is not None else (),
                )
            continue
        live.append((current, is_diseq, source, original_vars))

    # Split into connected components over the remaining free variables.
    union_find = _UnionFind()
    for constraint, _, _, _ in live:
        variables = constraint.variables()
        for var in variables[1:]:
            union_find.union(variables[0], var)

    components: Dict[int, List[Tuple]] = {}
    for entry in live:
        root = union_find.find(entry[0].variables()[0])
        components.setdefault(root, []).append(entry)

    witness: Dict[int, int] = {}
    for var in system.variables:
        domain = store.domains[var.index]
        witness[var.index] = domain.lo  # refined below for free components

    solver = OmegaSolver(max_branch_nodes=branch_budget)
    for root, members in components.items():
        component_vars = {
            var
            for constraint, _, _, _ in members
            for var in constraint.variables()
        }
        bounds = {
            var: (store.domains[var].lo, store.domains[var].hi)
            for var in component_vars
        }
        component_constraints = [c for c, d, _, _ in members if not d]
        component_diseqs = [c for c, d, _, _ in members if d]
        component_witness = solver.solve(
            component_constraints, bounds, component_diseqs
        )
        if component_witness is None:
            failing_vars = set(component_vars)
            for _, _, _, original_vars in members:
                failing_vars.update(original_vars)
            sources = tuple(
                {
                    id(source): source
                    for _, _, source, _ in members
                    if source is not None
                }.values()
            )
            logger.debug(
                "leaf refuted: component of %d vars / %d constraints "
                "(of %d components, %d live constraints)",
                len(component_vars),
                len(members),
                len(components),
                len(live),
            )
            return LeafCheckResult(
                feasible=False,
                components=len(components),
                constraints=len(live),
                failing_var_indices=frozenset(failing_vars),
                failing_sources=sources,
            )
        witness.update(component_witness)

    return LeafCheckResult(
        feasible=True,
        witness=witness,
        components=len(components),
        constraints=len(live),
    )
