"""Recursive learning (Section 2.3), generalised with interval propagation.

Classic recursive learning (Kunz–Pradhan [10]): to learn from a value
assignment ``val(s)``, enumerate every way W of *justifying* it at the
driving gate, propagate each justification in isolation, and keep the
implications common to all of them — those must hold whenever ``val(s)``
holds.  The paper extends the propagation step from Boolean implication
to full hybrid propagation (BCP + interval constraint propagation), so
implications flow through the datapath.

:class:`RecursiveLearner` implements the scheme to arbitrary recursion
depth over a compiled constraint system; Section 3's predicate learning
uses it at depth 1.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.intervals import Interval
from repro.constraints.compile import CompiledSystem
from repro.constraints.engine import PropagationEngine
from repro.constraints.store import Conflict, DomainStore
from repro.constraints.variable import Variable
from repro.rtl.circuit import Node
from repro.rtl.types import OpKind

#: Reason tag for implications applied during probing.  These events only
#: ever exist inside a probe level that is backtracked before search.
RECURSIVE_TAG = "recursive-learning"

#: A justification option: a set of (variable, value) assignments that is
#: sufficient (and part of an exhaustive case split) for the probed value.
Option = List[Tuple[Variable, int]]


class ProbeDeadline(Exception):
    """The learner's wall-clock deadline passed mid-probe.

    Raised only at points where the current probe frame holds no pushed
    decision level of its own; callers deeper in the recursion may
    still hold levels, so the catcher must backtrack the store to its
    own entry level before continuing.
    """


def justification_options(
    system: CompiledSystem, node: Node, value: int
) -> Optional[List[Option]]:
    """Exhaustive justification case split for a Boolean gate output.

    Returns ``None`` when the gate offers no *branching* justification
    (the value is implied directly, or the operator is not enumerable —
    e.g. an atomic comparator).  Soundness of recursive learning rests on
    the returned options covering every way the output can take ``value``.
    """
    kind = node.kind
    inputs = [system.var(net) for net in node.operands]
    if kind in (OpKind.AND, OpKind.NAND):
        controlled = 0 if kind is OpKind.AND else 1
        if value == controlled:
            return [[(var, 0)] for var in inputs]
        return None
    if kind in (OpKind.OR, OpKind.NOR):
        controlled = 1 if kind is OpKind.OR else 0
        if value == controlled:
            return [[(var, 1)] for var in inputs]
        return None
    if kind in (OpKind.XOR, OpKind.XNOR):
        target = value if kind is OpKind.XOR else 1 - value
        a, b = inputs
        return [
            [(a, 0), (b, target)],
            [(a, 1), (b, 1 - target)],
        ]
    return None


class RecursiveLearner:
    """Probe-and-intersect machinery over a live store/engine pair.

    The learner temporarily pushes decision levels on the store; it always
    restores the entry level before returning.
    """

    def __init__(
        self,
        system: CompiledSystem,
        store: DomainStore,
        engine: PropagationEngine,
        deadline: Optional[float] = None,
    ):
        self.system = system
        self.store = store
        self.engine = engine
        #: ``time.perf_counter()`` instant after which probing raises
        #: :class:`ProbeDeadline` (the solver's cooperative budget).
        self.deadline = deadline
        #: Probe statistics.
        self.probes = 0

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise ProbeDeadline

    # ------------------------------------------------------------------
    def _propagate_under(
        self, assignments: Sequence[Tuple[Variable, int]]
    ) -> Optional[Dict[int, Interval]]:
        """Assign at a fresh level, propagate, snapshot, backtrack.

        Returns the final domain of every variable changed at the probe
        level (keyed by variable index), or ``None`` on conflict.
        """
        entry_level = self.store.decision_level
        self.store.push_level()
        mark = len(self.store.trail)
        failed = False
        for var, value in assignments:
            outcome = self.store.assign_bool(var, value, RECURSIVE_TAG)
            if isinstance(outcome, Conflict):
                failed = True
                break
        if not failed:
            conflict = self.engine.propagate()
            failed = conflict is not None
        if failed:
            self.store.backtrack_to(entry_level)
            self.engine.notify_backtrack()
            return None
        implied: Dict[int, Interval] = {}
        for event in self.store.trail[mark:]:
            implied[event.var.index] = event.new
        self.store.backtrack_to(entry_level)
        self.engine.notify_backtrack()
        return implied

    # ------------------------------------------------------------------
    def probe(
        self, var: Variable, value: int, depth: int = 1
    ) -> Optional[Dict[int, Interval]]:
        """Common implications of ``var == value``.

        Returns a map from variable index to the implied interval
        (the *union hull* over all justification branches), or ``None``
        when ``var == value`` is impossible in the current state.

        ``depth`` 0 is plain propagation; depth ``d`` enumerates the
        justification options of the probed gate and recurses into each
        branch at depth ``d - 1`` (Figure 1 of the paper is depth 1).
        """
        self._check_deadline()
        self.probes += 1
        if self.store.is_assigned(var):
            current = self.store.value(var)
            if current != value:
                return None
            return {}
        node = self._driver_node(var)
        options = (
            justification_options(self.system, node, value)
            if node is not None and depth > 0
            else None
        )
        if not options:
            return self._propagate_under([(var, value)])
        return self._probe_options(var, value, options, depth)

    def _probe_options(
        self,
        var: Variable,
        value: int,
        options: List[Option],
        depth: int,
    ) -> Optional[Dict[int, Interval]]:
        """Intersect the implications of every justification branch."""
        common: Optional[Dict[int, Interval]] = None
        viable_branches = 0
        for option in options:
            self._check_deadline()
            branch = self._probe_branch(var, value, option, depth)
            if branch is None:
                continue  # impossible branch contributes nothing
            viable_branches += 1
            if common is None:
                common = dict(branch)
            else:
                merged: Dict[int, Interval] = {}
                for index, interval in common.items():
                    other = branch.get(index)
                    if other is None:
                        # Not narrowed in this branch: falls back to the
                        # pre-probe domain, so no common narrowing.
                        continue
                    merged[index] = interval.union_hull(other)
                common = merged
        if viable_branches == 0:
            return None
        assert common is not None
        # Keep only genuine narrowings relative to the current domains.
        return {
            index: interval
            for index, interval in common.items()
            if not interval.contains_interval(
                self.store.domains[index]
            )
        }

    def _probe_branch(
        self,
        var: Variable,
        value: int,
        option: Option,
        depth: int,
    ) -> Optional[Dict[int, Interval]]:
        """Implications of one justification branch (with recursion)."""
        assignments = [(var, value)] + list(option)
        implied = self._propagate_under(assignments)
        if implied is None or depth <= 1:
            return implied
        # Deeper recursion: re-enter the branch and recursively probe the
        # still-unassigned Boolean support, merging what it implies.
        entry_level = self.store.decision_level
        self.store.push_level()
        mark = len(self.store.trail)
        conflict = None
        for assign_var, assign_value in assignments:
            outcome = self.store.assign_bool(
                assign_var, assign_value, RECURSIVE_TAG
            )
            if isinstance(outcome, Conflict):
                conflict = outcome
                break
        if conflict is None:
            conflict = self.engine.propagate()
        if conflict is not None:
            self.store.backtrack_to(entry_level)
            self.engine.notify_backtrack()
            return None
        deeper: Dict[int, Interval] = {}
        for event in self.store.trail[mark:]:
            deeper[event.var.index] = event.new
        # Recursively analyse gates assigned-but-unjustified here.
        for event in list(self.store.trail[mark:]):
            target = event.var
            if not target.is_bool or not event.new.is_point:
                continue
            node = self._driver_node(target)
            if node is None:
                continue
            options = justification_options(
                self.system, node, event.new.lo
            )
            if not options:
                continue
            nested = self._probe_options(
                target, event.new.lo, options, depth - 1
            )
            if nested is None:
                # No justification of this implied value survives: the
                # whole branch is inconsistent.
                self.store.backtrack_to(entry_level)
                self.engine.notify_backtrack()
                return None
            for index, interval in nested.items():
                known = deeper.get(index)
                deeper[index] = (
                    interval
                    if known is None
                    else known.intersect(interval) or known
                )
        self.store.backtrack_to(entry_level)
        self.engine.notify_backtrack()
        return deeper

    def _driver_node(self, var: Variable) -> Optional[Node]:
        if var.net_index is None:
            return None
        net = self.system.circuit.nets[var.net_index]
        return net.driver
