"""Predicate abstraction with learned relations (Section 6).

The paper's conclusions propose using predicate learning "to improve
predicate abstraction methods by capturing relations between predicates
... to reduce the occurrence of false negatives during abstraction".
This module implements that idea end-to-end:

1. **Predicate selection** — the comparator outputs of one time frame
   whose fan-in cone contains only registers and constants (pure *state*
   predicates), plus any Boolean state monitor the caller names.
2. **Abstract reachability** — breadth-first exploration of the
   predicate-valuation state space; each abstract transition
   ``b -> b'`` is confirmed with one HDPLL query on a two-frame,
   free-initial-state unrolling.
3. **Property check** — an abstract state is *bad* when the concrete
   monitor can be 0 in some concretisation (one query per reachable
   state).  If no reachable abstract state is bad, the property is
   **proved** (predicate abstraction over-approximates reachability);
   otherwise the result is inconclusive ("maybe": the abstract
   counterexample may be spurious).
4. **Learned relations as pruning** — Section 3's static learning is
   run on the step circuit; binary relations between predicate
   variables rule candidate valuations out *before* any solver call.
   The result reports how many candidate states/transitions the
   relations eliminated — the measurable form of the paper's claim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CircuitError
from repro.constraints.clause import BoolLit
from repro.constraints.compile import compile_circuit
from repro.constraints.engine import PropagationEngine
from repro.constraints.store import DomainStore
from repro.core.config import SolverConfig
from repro.core.hdpll import solve_circuit
from repro.core.predlearn import run_predicate_learning
from repro.core.result import Status
from repro.rtl.circuit import Circuit, Net
from repro.rtl.levelize import fanin_cone_nodes
from repro.rtl.simulate import simulate_combinational
from repro.rtl.types import PREDICATE_KINDS, OpKind
from repro.bmc.property import SafetyProperty
from repro.bmc.unroll import unroll_free_initial
from repro.bmc.unroll import frame_name

AbstractState = Tuple[int, ...]


@dataclass
class AbstractionResult:
    """Outcome of an abstract reachability run."""

    proved: bool
    #: Names of the predicates spanning the abstract state space.
    predicates: List[str] = field(default_factory=list)
    reachable_states: Set[AbstractState] = field(default_factory=set)
    #: First reachable abstract state that admits a violation ("maybe").
    bad_state: Optional[AbstractState] = None
    solver_calls: int = 0
    #: Candidate valuations eliminated by learned predicate relations
    #: before any solver call (the Section 6 effect).
    pruned_by_relations: int = 0
    relations_used: int = 0
    note: str = ""


def state_predicates(circuit: Circuit) -> List[Net]:
    """Comparator outputs depending only on registers and constants."""
    predicates: List[Net] = []
    for node in circuit.nodes:
        if node.kind not in PREDICATE_KINDS:
            continue
        cone = fanin_cone_nodes([node.output])
        if not any(inner.kind is OpKind.INPUT for inner in cone):
            predicates.append(node.output)
    return predicates


class _Relations:
    """Binary predicate relations usable as valuation filters."""

    def __init__(self, clauses, index_of_var: Dict[int, int]):
        #: list of clauses, each as ((pred_index, polarity), ...) where a
        #: valuation satisfies the clause when any literal matches.
        self.filters: List[Tuple[Tuple[int, bool], ...]] = []
        for clause in clauses:
            literals = []
            usable = True
            for literal in clause.literals:
                if not isinstance(literal, BoolLit):
                    usable = False
                    break
                position = index_of_var.get(literal.var.index)
                if position is None:
                    usable = False
                    break
                literals.append((position, literal.positive))
            if usable and literals:
                self.filters.append(tuple(literals))

    def admits(self, valuation: Sequence[int]) -> bool:
        for clause in self.filters:
            if not any(
                bool(valuation[position]) == polarity
                for position, polarity in clause
            ):
                return False
        return True

    def __len__(self) -> int:
        return len(self.filters)


def predicate_abstraction_check(
    circuit: Circuit,
    prop: SafetyProperty,
    predicates: Optional[Sequence[str]] = None,
    config: Optional[SolverConfig] = None,
    use_learned_relations: bool = True,
    max_predicates: int = 8,
    max_states: int = 4096,
) -> AbstractionResult:
    """Attempt to prove a safety property by predicate abstraction."""
    config = config or SolverConfig()
    circuit.validate()
    if prop.ok_signal not in circuit.outputs:
        raise CircuitError(f"unknown property signal {prop.ok_signal!r}")

    if predicates is None:
        predicate_nets = state_predicates(circuit)[:max_predicates]
    else:
        predicate_nets = [circuit.net(name) for name in predicates]
    if not predicate_nets:
        raise CircuitError("no state predicates available for abstraction")
    names = [net.name for net in predicate_nets]
    result = AbstractionResult(proved=False, predicates=list(names))

    # Two-frame step circuit with a free initial state: frame 0 carries
    # P(regs), frame 1 carries P(regs').
    step = unroll_free_initial(circuit, 2)

    # Learned relations over the frame-0/frame-1 predicate variables.
    relations = _Relations([], {})
    step_relations = _Relations([], {})
    if use_learned_relations:
        system = compile_circuit(step)
        store = DomainStore(system.variables)
        engine = PropagationEngine(store, system.propagators)
        engine.enqueue_all()
        if engine.propagate() is None:
            report = run_predicate_learning(
                system, store, engine, None, include_direct_relations=True
            )
            result.relations_used = report.relations_learned
            frame0 = {
                system.var_by_name(frame_name(name, 0)).index: position
                for position, name in enumerate(names)
            }
            both = dict(frame0)
            for position, name in enumerate(names):
                both[
                    system.var_by_name(frame_name(name, 1)).index
                ] = len(names) + position
            relations = _Relations(report.clauses, frame0)
            step_relations = _Relations(report.clauses, both)

    # Initial abstract state from the reset values.
    reset_inputs = {net.name: 0 for net in circuit.inputs}
    reset_values = simulate_combinational(circuit, reset_inputs)
    initial: AbstractState = tuple(
        reset_values[name] for name in names
    )

    ok_net_name = circuit.outputs[prop.ok_signal].name
    monitor_position = names.index(ok_net_name) if ok_net_name in names else None

    def is_bad(state: AbstractState) -> Optional[bool]:
        """Can the monitor be 0 in some concretisation of ``state``?"""
        if monitor_position is not None:
            # The monitor is itself a predicate: its truth is part of
            # the abstract state.
            return state[monitor_position] == 0
        assumptions = {
            frame_name(name, 0): value for name, value in zip(names, state)
        }
        assumptions[frame_name(prop.ok_signal, 0)] = 0
        result.solver_calls += 1
        answer = solve_circuit(step, assumptions, config)
        if answer.status is Status.UNKNOWN:
            return None
        return answer.is_sat

    frontier: List[AbstractState] = [initial]
    result.reachable_states.add(initial)
    while frontier:
        if len(result.reachable_states) > max_states:
            result.note = "abstract state budget exhausted"
            return result
        state = frontier.pop()
        bad = is_bad(state)
        if bad is None:
            result.note = "solver budget exhausted during property check"
            return result
        if bad:
            result.bad_state = state
            result.note = (
                "a reachable abstract state admits a violation (the "
                "abstraction is too coarse or the property is false)"
            )
            return result
        for candidate in itertools.product((0, 1), repeat=len(names)):
            if candidate in result.reachable_states:
                continue
            if not relations.admits(candidate):
                result.pruned_by_relations += 1
                continue
            if not step_relations.admits(tuple(state) + candidate):
                result.pruned_by_relations += 1
                continue
            assumptions: Dict[str, int] = {}
            for name, value in zip(names, state):
                assumptions[frame_name(name, 0)] = value
            for name, value in zip(names, candidate):
                assumptions[frame_name(name, 1)] = value
            result.solver_calls += 1
            answer = solve_circuit(step, assumptions, config)
            if answer.status is Status.UNKNOWN:
                result.note = "solver budget exhausted during exploration"
                return result
            if answer.is_sat:
                result.reachable_states.add(candidate)
                frontier.append(candidate)

    result.proved = True
    result.note = (
        f"no reachable abstract state admits a violation "
        f"({len(result.reachable_states)} abstract states)"
    )
    return result
