"""Solver results and statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class Status(enum.Enum):
    """Outcome of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # timeout or budget exhaustion


@dataclass
class SolverStats:
    """Counters the benchmark harness and tests inspect."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    #: Leaf checks: calls into the Omega integer solver.
    fme_checks: int = 0
    #: Leaf checks that refuted the solution box.
    fme_conflicts: int = 0
    #: Structural (justification) decisions taken.
    structural_decisions: int = 0
    #: J-conflicts found by the structural strategy (Section 4.3).
    j_conflicts: int = 0
    #: Relations learned by predicate learning (Section 3).
    learned_relations: int = 0
    #: Wall-clock seconds spent in predicate learning pre-processing.
    learn_time: float = 0.0
    #: Wall-clock seconds spent in search (excludes learn_time).
    solve_time: float = 0.0
    #: Propagator enqueues that passed the event-kind wake filter.
    propagator_wakeups: int = 0
    #: Clauses examined during watched-literal propagation.
    clause_visits: int = 0
    #: Watched-literal relocations (replacement watch found).
    watch_moves: int = 0
    #: Interval interning cache hit rate over this solve (0.0 when the
    #: solve performed no interval constructions).
    interval_cache_hit_rate: float = 0.0


@dataclass
class SolverResult:
    """Status plus (for SAT) a full verified model."""

    status: Status
    #: net name -> value for every net of the circuit (SAT only).
    model: Optional[Dict[str, int]] = None
    stats: SolverStats = field(default_factory=SolverStats)
    #: Human-readable note, e.g. "timeout after 10.0s".
    note: str = ""

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverResult({self.status.value}, decisions="
            f"{self.stats.decisions}, conflicts={self.stats.conflicts})"
        )
