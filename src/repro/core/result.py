"""Solver results and statistics.

:class:`SolverStats` used to be a dataclass with one field per counter;
it is now an attribute facade over a :class:`repro.obs.MetricsRegistry`
— the single source of truth for a run's numeric observability data.
Every pre-existing attribute (``stats.decisions``, ``stats.solve_time``,
...) keeps working, including augmented assignment, and *new* metrics
can be added by plain attribute assignment from anywhere in the solver:
integers auto-register as counters, floats as gauges.  ``as_dict()``
snapshots everything, which is how the harness builds its
:class:`~repro.harness.runner.RunRecord` and bench reports without
copying fields one by one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry


class Status(enum.Enum):
    """Outcome of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # timeout or budget exhaustion


#: The registered solver metrics: name -> (kind, default).  Counters are
#: integer totals; gauges are float point-in-time values.  The set is
#: extensible at runtime — assigning an unlisted attribute on a
#: SolverStats registers it on the fly.
STAT_SPEC = {
    "decisions": ("counter", 0),
    "conflicts": ("counter", 0),
    "propagations": ("counter", 0),
    "learned_clauses": ("counter", 0),
    "restarts": ("counter", 0),
    "max_decision_level": ("counter", 0),
    #: Leaf checks: calls into the Omega integer solver.
    "fme_checks": ("counter", 0),
    #: Leaf checks that refuted the solution box.
    "fme_conflicts": ("counter", 0),
    #: Structural (justification) decisions taken.
    "structural_decisions": ("counter", 0),
    #: J-conflicts found by the structural strategy (Section 4.3).
    "j_conflicts": ("counter", 0),
    #: Relations learned by predicate learning (Section 3).
    "learned_relations": ("counter", 0),
    #: Propagator enqueues that passed the event-kind wake filter.
    "propagator_wakeups": ("counter", 0),
    #: Clauses examined during watched-literal propagation.
    "clause_visits": ("counter", 0),
    #: Watched-literal relocations (replacement watch found).
    "watch_moves": ("counter", 0),
    #: Queries answered by the owning persistent session so far.
    "session_solves": ("counter", 0),
    #: Learned clauses re-instantiated at a new time frame (sessions).
    "clauses_shifted": ("counter", 0),
    #: Predicate-probe cone-cache hits / misses (sessions).
    "probe_cache_hits": ("counter", 0),
    "probe_cache_misses": ("counter", 0),
    #: Learned clauses dropped by LBD/activity-tiered DB reduction/cap.
    "clauses_evicted": ("counter", 0),
    #: Mid-tier learned clauses demoted to the local tier (staleness).
    "clauses_demoted": ("counter", 0),
    #: Literals removed from first-UIP clauses by recursive minimization.
    "literals_minimized": ("counter", 0),
    #: End-of-solve clause-database tier sizes (disposable learned set).
    "clause_db_core": ("counter", 0),
    "clause_db_mid": ("counter", 0),
    "clause_db_local": ("counter", 0),
    #: Decision-heap health: successful selections vs lazily discarded
    #: stale entries (see :class:`repro.core.decide.ActivityOrder`).
    "heap_picks": ("counter", 0),
    "heap_stale_pops": ("counter", 0),
    #: Portfolio solving (cube-and-conquer, PR 5): cubes emitted by the
    #: lookahead splitter / solved to a verdict / refuted at generation.
    "cubes_generated": ("counter", 0),
    "cubes_solved": ("counter", 0),
    "cubes_refuted": ("counter", 0),
    #: Learned clauses shipped to / installed from portfolio peers.
    "clauses_exported": ("counter", 0),
    "clauses_imported": ("counter", 0),
    #: Node counts around the optional ``rtl.optimize`` pre-pass.
    "optimize_nodes_before": ("counter", 0),
    "optimize_nodes_after": ("counter", 0),
    #: Domain-store trail events (actual bound tightenings) this solve.
    "narrowings": ("counter", 0),
    #: Expensive-tier pops skipped by the vectorized no-op filter
    #: (still counted in ``propagations``; see engine parity contract).
    "props_filtered": ("counter", 0),
    #: Specialized-kernel plan cache hits/misses (engine construction
    #: and frame extension; reference engine reports zero for both).
    "kernel_plan_hits": ("counter", 0),
    "kernel_plan_misses": ("counter", 0),
    #: Wall-clock seconds spent in predicate learning pre-processing.
    "learn_time": ("gauge", 0.0),
    #: Wall-clock seconds spent in search (excludes learn_time).
    "solve_time": ("gauge", 0.0),
    #: Wall-clock seconds spent inside FME leaf certification.
    "fme_time": ("gauge", 0.0),
    #: Interval interning cache hit rate over this solve (0.0 when the
    #: solve performed no interval constructions).
    "interval_cache_hit_rate": ("gauge", 0.0),
    #: hits / (hits + misses) of the probe cone cache (sessions).
    "probe_cache_hit_rate": ("gauge", 0.0),
    #: Propagation throughput over this solve's wall time (0.0 when the
    #: solve finished too fast to time).
    "props_per_sec": ("gauge", 0.0),
    "narrowings_per_sec": ("gauge", 0.0),
    #: installed / received for shared-clause import (portfolio).
    "share_import_hit_rate": ("gauge", 0.0),
    #: Mean recorded LBD over disposable learned clauses at solve end.
    "learned_lbd_mean": ("gauge", 0.0),
}


class SolverStats:
    """Counters the benchmark harness and tests inspect.

    Attribute reads/writes delegate to the underlying registry; see the
    module docstring.  ``SolverStats(decisions=5)`` still works, as does
    assigning brand-new attributes (they become registry metrics).
    """

    __slots__ = ("registry",)

    def __init__(self, **overrides):
        registry = MetricsRegistry()
        object.__setattr__(self, "registry", registry)
        for name, (kind, default) in STAT_SPEC.items():
            if kind == "counter":
                registry.counter(name).value = default
            else:
                registry.gauge(name).value = default
        for name, value in overrides.items():
            registry.set_value(name, value)

    def __getattr__(self, name: str):
        metric = self.registry.get(name)
        if metric is None:
            raise AttributeError(
                f"SolverStats has no metric {name!r}"
            )
        if metric.kind == "histogram":
            return metric
        return metric.value

    def __setattr__(self, name: str, value) -> None:
        self.registry.set_value(name, value)

    def as_dict(self, include_histograms: bool = True) -> Dict[str, object]:
        """Snapshot of every metric (histograms as summary dicts)."""
        return self.registry.as_dict(include_histograms=include_histograms)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SolverStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{name}={value!r}"
            for name, value in self.as_dict(include_histograms=False).items()
            if value
        )
        return f"SolverStats({parts})"


@dataclass
class SolverResult:
    """Status plus (for SAT) a full verified model."""

    status: Status
    #: net name -> value for every net of the circuit (SAT only).
    model: Optional[Dict[str, int]] = None
    stats: SolverStats = field(default_factory=SolverStats)
    #: Human-readable note, e.g. "timeout after 10.0s".
    note: str = ""

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverResult({self.status.value}, decisions="
            f"{self.stats.decisions}, conflicts={self.stats.conflicts})"
        )
