"""Hybrid conflict analysis over the implication graph (Section 2.4).

Starting from the antecedents of a conflict, the analysis walks the
hybrid implication graph backwards to find a *cut*: a set of value
assignments whose conjunction is sufficient for the conflict.  The
negation of the cut is the learned (conflict-avoiding) clause.

The cut is the first unique implication point (1-UIP) generalised to the
hybrid trail: events at the conflict level are resolved with their
antecedents until a single Boolean assignment remains; events from lower
levels become literals directly when Boolean, and are either expanded to
their Boolean causes or (optionally) kept as *word literals* — the
paper's hybrid learned clauses.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.constraints.clause import BoolLit, Clause, Literal, WordLit
from repro.constraints.store import Conflict, DomainStore, Event


@dataclass
class AnalysisResult:
    """A learned clause and where to backtrack to."""

    clause: Clause
    backtrack_level: int
    #: The literal asserted by the clause after backtracking (may be None
    #: in the rare no-UIP corner).
    asserting_literal: Optional[Literal]

    @property
    def word_literal_count(self) -> int:
        """Word (interval) literals in the learned clause — the hybrid
        share of the cut, reported in trace ``conflict`` events."""
        return sum(
            1 for lit in self.clause.literals if isinstance(lit, WordLit)
        )

    @property
    def bool_literal_count(self) -> int:
        return len(self.clause.literals) - self.word_literal_count


def _negate_event_literal(event: Event) -> BoolLit:
    """The Boolean literal falsified by this point assignment."""
    value = event.new.lo
    return BoolLit(event.var, positive=(value == 0))


def _is_bool_point(event: Event) -> bool:
    return event.var.is_bool and event.new.is_point


def analyze_conflict(
    conflict: Conflict,
    store: DomainStore,
    hybrid_word_literals: bool = False,
) -> Optional[AnalysisResult]:
    """1-UIP conflict analysis; ``None`` means the problem is UNSAT.

    ``None`` is returned when the conflict does not depend on any
    decision (it follows from the problem plus level-0 assumptions).
    """
    seen: Set[int] = set()
    heap: List[int] = []

    def mark(event_id: int) -> None:
        if event_id not in seen:
            seen.add(event_id)
            heapq.heappush(heap, -event_id)

    for antecedent in conflict.antecedents:
        mark(antecedent)

    live = [eid for eid in seen if store.trail[eid].level > 0]
    if not live:
        return None
    conflict_level = max(store.trail[eid].level for eid in live)
    pending_at_level = sum(
        1 for eid in live if store.trail[eid].level == conflict_level
    )

    lits_by_var: Dict[int, Literal] = {}
    #: var index -> level at which its literal became false (the level
    #: of the trail event it was derived from).
    lit_levels: Dict[int, int] = {}
    uip_literal: Optional[Literal] = None

    while heap:
        event_id = -heapq.heappop(heap)
        event = store.trail[event_id]
        if event.level == 0:
            continue
        if event.level < conflict_level:
            if _is_bool_point(event):
                lit = _negate_event_literal(event)
                lits_by_var[event.var.index] = lit
                lit_levels[event.var.index] = event.level
            elif hybrid_word_literals or not event.antecedents:
                # Keep the narrowing itself as a (negative) word literal:
                # "not (var in event.new)".  Events with no antecedents
                # (word decisions and retractable assumptions) MUST be
                # kept even when hybrid literals are disabled — dropping
                # them would make the clause depend on an assumption it
                # does not mention, which is unsound once the assumption
                # is retracted.
                if event.var.index not in lits_by_var:
                    lits_by_var[event.var.index] = WordLit(
                        event.var, event.new, positive=False
                    )
                    lit_levels[event.var.index] = event.level
            else:
                for antecedent in event.antecedents:
                    mark(antecedent)
            continue
        # Event at the conflict level.
        pending_at_level -= 1
        if (
            pending_at_level == 0
            and _is_bool_point(event)
            and uip_literal is None
        ):
            # UIP found; keep draining the heap so lower-level causes
            # still become literals.
            uip_literal = _negate_event_literal(event)
            continue
        if not event.antecedents:
            # A decision at the conflict level that is not the UIP (this
            # happens when several decisions share a level, e.g. the
            # lazy-SMT theory check): keep it as a clause literal.  A
            # word-valued event with no antecedents (an interval
            # assumption) becomes a negative word literal — it has no
            # causes to expand into, so eliding it would be unsound.
            if _is_bool_point(event):
                lits_by_var[event.var.index] = _negate_event_literal(event)
                lit_levels[event.var.index] = event.level
            elif event.var.index not in lits_by_var:
                lits_by_var[event.var.index] = WordLit(
                    event.var, event.new, positive=False
                )
                lit_levels[event.var.index] = event.level
            continue
        for antecedent in event.antecedents:
            if antecedent not in seen:
                ante_event = store.trail[antecedent]
                if ante_event.level == conflict_level:
                    pending_at_level += 1
                mark(antecedent)

    literals = list(lits_by_var.values())
    if uip_literal is not None:
        literals.append(uip_literal)

    if not literals:
        return None

    if uip_literal is not None:
        backtrack_level = max(lit_levels.values(), default=0)
    else:
        # No asserting literal (conflict resolved entirely into lower
        # levels): back off one level below the deepest literal so the
        # clause re-opens.
        backtrack_level = max(0, max(lit_levels.values()) - 1)

    clause = Clause(
        literals=tuple(literals), learned=True, origin="conflict"
    )
    return AnalysisResult(
        clause=clause,
        backtrack_level=backtrack_level,
        asserting_literal=uip_literal,
    )


def decision_cut_clause(store: DomainStore) -> Optional[Clause]:
    """The all-decisions conflict clause (used for FME leaf refutations).

    The Omega refutation of a solution box depends, through propagation,
    on the decisions that shaped the box; negating the full decision
    conjunction is always a sound (if blunt) learned clause — the classic
    decision cut.  Returns ``None`` when there are no decisions (UNSAT).
    """
    literals: List[Literal] = []
    for event in store.trail:
        # Level-0 assumptions (the single-shot path) are part of the
        # problem itself; retractable assumption *levels* (persistent
        # sessions) must enter the cut like decisions or the clause
        # would claim validity beyond the current query.
        if event.is_decision or (event.is_assumption and event.level > 0):
            if _is_bool_point(event):
                literals.append(_negate_event_literal(event))
            else:
                literals.append(
                    WordLit(event.var, event.new, positive=False)
                )
    if not literals:
        return None
    return Clause(literals=tuple(literals), learned=True, origin="fme-conflict")
