"""Hybrid conflict analysis over the implication graph (Section 2.4).

Starting from the antecedents of a conflict, the analysis walks the
hybrid implication graph backwards to find a *cut*: a set of value
assignments whose conjunction is sufficient for the conflict.  The
negation of the cut is the learned (conflict-avoiding) clause.

The cut is the first unique implication point (1-UIP) generalised to the
hybrid trail: events at the conflict level are resolved with their
antecedents until a single Boolean assignment remains; events from lower
levels become literals directly when Boolean, and are either expanded to
their Boolean causes or (optionally) kept as *word literals* — the
paper's hybrid learned clauses.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.constraints.clause import BoolLit, Clause, Literal, WordLit
from repro.constraints.store import Conflict, DomainStore, Event


@dataclass
class AnalysisResult:
    """A learned clause and where to backtrack to."""

    clause: Clause
    backtrack_level: int
    #: The literal asserted by the clause after backtracking (may be None
    #: in the rare no-UIP corner).
    asserting_literal: Optional[Literal]
    #: Literals removed from the first-UIP clause by recursive
    #: minimization (0 when minimization is off or found nothing).
    literals_minimized: int = 0

    @property
    def word_literal_count(self) -> int:
        """Word (interval) literals in the learned clause — the hybrid
        share of the cut, reported in trace ``conflict`` events."""
        return sum(
            1 for lit in self.clause.literals if isinstance(lit, WordLit)
        )

    @property
    def bool_literal_count(self) -> int:
        return len(self.clause.literals) - self.word_literal_count


def _negate_event_literal(event: Event) -> BoolLit:
    """The Boolean literal falsified by this point assignment."""
    value = event.new.lo
    return BoolLit(event.var, positive=(value == 0))


def _is_bool_point(event: Event) -> bool:
    return event.var.is_bool and event.new.is_point


def _minimize_clause(
    lits_by_var: Dict[int, "Literal"],
    lit_levels: Dict[int, int],
    event_by_var: Dict[int, int],
    seen: Set[int],
    store: DomainStore,
) -> int:
    """Recursive (self-subsuming) clause minimization; returns removals.

    A clause literal is redundant when the trail event it was derived
    from is *implied* by the remaining clause literals' facts plus level
    0: every antecedent of the event is — transitively — marked from the
    analysis walk (``seen``), at level 0, or itself so supported.  The
    recursion fails at unmarked decisions/assumptions (no antecedents).

    Soundness rests on the implication graph being acyclic with
    antecedent event ids strictly below the event's own id: every
    support chain strictly descends, so proofs ground out in level-0
    facts and kept literals even when several candidates are removed
    (no circular "A supports B supports A").  Events marked during the
    analysis are themselves implied by the clause literals + level 0 —
    conflict-level marked events all lie between the 1-UIP and the
    conflict (the heap drains in descending event id, so an older
    conflict-level event would still be pending when the UIP is
    identified), and lower-level marked events either became literals
    or had all their antecedents marked.
    """
    trail = store.trail
    clause_levels = frozenset(lit_levels.values())
    #: event id -> supported? (memoized across candidates).
    cache: Dict[int, bool] = {}

    def supported(top: int) -> bool:
        # Iterative post-order DFS (implication chains can exceed the
        # Python recursion limit on deep trails).
        stack = [top]
        while stack:
            event_id = stack[-1]
            if event_id in cache:
                stack.pop()
                continue
            if event_id in seen:
                cache[event_id] = True
                stack.pop()
                continue
            event = trail[event_id]
            if event.level == 0:
                cache[event_id] = True
                stack.pop()
                continue
            if not event.antecedents or event.level not in clause_levels:
                # Unmarked decision/assumption, or a level the clause
                # does not even mention (cheap abstraction filter —
                # keeping the literal is always sound).
                cache[event_id] = False
                stack.pop()
                continue
            pending = [a for a in event.antecedents if a not in cache]
            if pending:
                stack.extend(pending)
                continue
            cache[event_id] = all(
                cache[a] for a in event.antecedents
            )
            stack.pop()
        return cache[top]

    removed = 0
    for var_index, event_id in list(event_by_var.items()):
        event = trail[event_id]
        if not event.antecedents:
            continue
        if all(supported(a) for a in event.antecedents):
            del lits_by_var[var_index]
            del lit_levels[var_index]
            del event_by_var[var_index]
            removed += 1
    return removed


def analyze_conflict(
    conflict: Conflict,
    store: DomainStore,
    hybrid_word_literals: bool = False,
    minimize: bool = True,
) -> Optional[AnalysisResult]:
    """1-UIP conflict analysis; ``None`` means the problem is UNSAT.

    ``None`` is returned when the conflict does not depend on any
    decision (it follows from the problem plus level-0 assumptions).
    """
    seen: Set[int] = set()
    heap: List[int] = []

    def mark(event_id: int) -> None:
        if event_id not in seen:
            seen.add(event_id)
            heapq.heappush(heap, -event_id)

    for antecedent in conflict.antecedents:
        mark(antecedent)

    live = [eid for eid in seen if store.trail[eid].level > 0]
    if not live:
        return None
    conflict_level = max(store.trail[eid].level for eid in live)
    pending_at_level = sum(
        1 for eid in live if store.trail[eid].level == conflict_level
    )

    lits_by_var: Dict[int, Literal] = {}
    #: var index -> level at which its literal became false (the level
    #: of the trail event it was derived from).
    lit_levels: Dict[int, int] = {}
    #: var index -> trail event the literal was derived from, for the
    #: minimization pass (the UIP is deliberately absent: the asserting
    #: literal is never a removal candidate).
    event_by_var: Dict[int, int] = {}
    uip_literal: Optional[Literal] = None

    while heap:
        event_id = -heapq.heappop(heap)
        event = store.trail[event_id]
        if event.level == 0:
            continue
        if event.level < conflict_level:
            if _is_bool_point(event):
                lit = _negate_event_literal(event)
                lits_by_var[event.var.index] = lit
                lit_levels[event.var.index] = event.level
                event_by_var[event.var.index] = event_id
            elif hybrid_word_literals or not event.antecedents:
                # Keep the narrowing itself as a (negative) word literal:
                # "not (var in event.new)".  Events with no antecedents
                # (word decisions and retractable assumptions) MUST be
                # kept even when hybrid literals are disabled — dropping
                # them would make the clause depend on an assumption it
                # does not mention, which is unsound once the assumption
                # is retracted.
                if event.var.index not in lits_by_var:
                    lits_by_var[event.var.index] = WordLit(
                        event.var, event.new, positive=False
                    )
                    lit_levels[event.var.index] = event.level
                    event_by_var[event.var.index] = event_id
            else:
                for antecedent in event.antecedents:
                    mark(antecedent)
            continue
        # Event at the conflict level.
        pending_at_level -= 1
        if (
            pending_at_level == 0
            and _is_bool_point(event)
            and uip_literal is None
        ):
            # UIP found; keep draining the heap so lower-level causes
            # still become literals.
            uip_literal = _negate_event_literal(event)
            continue
        if not event.antecedents:
            # A decision at the conflict level that is not the UIP (this
            # happens when several decisions share a level, e.g. the
            # lazy-SMT theory check): keep it as a clause literal.  A
            # word-valued event with no antecedents (an interval
            # assumption) becomes a negative word literal — it has no
            # causes to expand into, so eliding it would be unsound.
            if _is_bool_point(event):
                lits_by_var[event.var.index] = _negate_event_literal(event)
                lit_levels[event.var.index] = event.level
            elif event.var.index not in lits_by_var:
                lits_by_var[event.var.index] = WordLit(
                    event.var, event.new, positive=False
                )
                lit_levels[event.var.index] = event.level
            continue
        for antecedent in event.antecedents:
            if antecedent not in seen:
                ante_event = store.trail[antecedent]
                if ante_event.level == conflict_level:
                    pending_at_level += 1
                mark(antecedent)

    minimized = 0
    if minimize and event_by_var:
        minimized = _minimize_clause(
            lits_by_var, lit_levels, event_by_var, seen, store
        )

    literals = list(lits_by_var.values())
    if uip_literal is not None:
        literals.append(uip_literal)

    if not literals:
        return None

    if uip_literal is not None:
        backtrack_level = max(lit_levels.values(), default=0)
    else:
        # No asserting literal (conflict resolved entirely into lower
        # levels): back off one level below the deepest literal so the
        # clause re-opens.
        backtrack_level = max(0, max(lit_levels.values()) - 1)

    clause = Clause(
        literals=tuple(literals), learned=True, origin="conflict"
    )
    return AnalysisResult(
        clause=clause,
        backtrack_level=backtrack_level,
        asserting_literal=uip_literal,
        literals_minimized=minimized,
    )


def decision_cut_clause(store: DomainStore) -> Optional[Clause]:
    """The all-decisions conflict clause (used for FME leaf refutations).

    The Omega refutation of a solution box depends, through propagation,
    on the decisions that shaped the box; negating the full decision
    conjunction is always a sound (if blunt) learned clause — the classic
    decision cut.  Returns ``None`` when there are no decisions (UNSAT).
    """
    literals: List[Literal] = []
    for event in store.trail:
        # Level-0 assumptions (the single-shot path) are part of the
        # problem itself; retractable assumption *levels* (persistent
        # sessions) must enter the cut like decisions or the clause
        # would claim validity beyond the current query.
        if event.is_decision or (event.is_assumption and event.level > 0):
            if _is_bool_point(event):
                literals.append(_negate_event_literal(event))
            else:
                literals.append(
                    WordLit(event.var, event.new, positive=False)
                )
    if not literals:
        return None
    return Clause(literals=tuple(literals), learned=True, origin="fme-conflict")
