"""The baseline HDPLL decision heuristic ([9]).

"A decision variable is picked based on an exponentially decaying
function based on its original fanout and the number of learned clauses
that it appears in": variable activity is seeded with the net's
transitive fanout count, bumped whenever the variable appears in a
learned clause, and decayed multiplicatively after every conflict —
VSIDS with a structural seed.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.constraints.clause import Clause
from repro.constraints.compile import CompiledSystem
from repro.constraints.store import DomainStore
from repro.constraints.variable import Variable, VarOrigin
from repro.rtl.levelize import (
    transitive_fanout_count,
    transitive_fanout_counts,
)


class ActivityOrder:
    """Max-activity variable selection with lazy-deletion heap."""

    def __init__(
        self,
        system: CompiledSystem,
        store: DomainStore,
        default_phase: int = 1,
        decay: float = 0.95,
    ):
        self.store = store
        self.candidates: List[Variable] = system.boolean_net_vars
        self.activity: Dict[int, float] = {}
        # Batch the structural seeds: one reverse-topological bitset
        # pass over the circuit instead of one cone walk per candidate.
        # (``add_candidates`` keeps the per-net walk — frame-extension
        # cones are tiny suffixes, where a full-circuit pass would cost
        # more than it saves.)
        nets = []
        for var in self.candidates:
            assert var.net_index is not None
            nets.append(system.circuit.nets[var.net_index])
        counts = transitive_fanout_counts(system.circuit, nets)
        for var, net in zip(self.candidates, nets):
            self.activity[var.index] = float(counts[net.index])
        self._heap: List[Tuple[float, int]] = []
        self._var_by_index = {var.index: var for var in self.candidates}
        self._rebuild_heap()
        self._bump_amount = 1.0
        self._decay = decay
        self._default_phase = default_phase
        self.phase: Dict[int, int] = {
            var.index: default_phase for var in self.candidates
        }
        #: Extra per-variable weight from predicate learning (Section 3,
        #: step 5: "learned relations guide the decision strategy by
        #: assigning a higher weight to variables in these relations").
        self.static_weight: Dict[int, float] = {}
        #: Heap health counters, surfaced through the metrics registry:
        #: successful selections vs. lazily discarded stale entries.
        self.picks = 0
        self.stale_pops = 0

    def _rebuild_heap(self) -> None:
        self._heap = [
            (-self.activity[var.index], var.index) for var in self.candidates
        ]
        heapq.heapify(self._heap)

    def add_candidates(
        self, system: CompiledSystem, variables: List[Variable]
    ) -> None:
        """Absorb freshly compiled variables (frame-extension path).

        Boolean net variables join the candidate pool with the usual
        structural fanout seed; existing activities, phases and bump
        scaling are untouched, so learned search guidance carries over
        to the extended problem.
        """
        for var in variables:
            if not (var.is_bool and var.origin is VarOrigin.NET):
                continue
            assert var.net_index is not None
            net = system.circuit.nets[var.net_index]
            activity = float(transitive_fanout_count(net))
            activity += self.static_weight.get(var.index, 0.0)
            self.activity[var.index] = activity
            self._var_by_index[var.index] = var
            self.candidates.append(var)
            self.phase.setdefault(var.index, self._default_phase)
            heapq.heappush(self._heap, (-activity, var.index))

    # ------------------------------------------------------------------
    # Activity maintenance
    # ------------------------------------------------------------------
    def bump_var(self, var: Variable) -> None:
        if var.index not in self.activity:
            return
        self.activity[var.index] += self._bump_amount
        heapq.heappush(self._heap, (-self.activity[var.index], var.index))

    def bump_clause(self, clause: Clause) -> None:
        for literal in clause.literals:
            self.bump_var(literal.var)

    def decay(self) -> None:
        """Exponential decay: future bumps weigh more."""
        self._bump_amount /= self._decay
        if self._bump_amount > 1e100:
            scale = 1e-100
            for index in self.activity:
                self.activity[index] *= scale
            self._bump_amount *= scale
            self._rebuild_heap()

    def add_static_weight(self, var: Variable, weight: float) -> None:
        """Seed extra activity from statically learned relations."""
        self.static_weight[var.index] = (
            self.static_weight.get(var.index, 0.0) + weight
        )
        if var.index in self.activity:
            self.activity[var.index] += weight
            heapq.heappush(
                self._heap, (-self.activity[var.index], var.index)
            )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def pick(self) -> Optional[Tuple[Variable, int]]:
        """Highest-activity unassigned Boolean net variable, with phase."""
        while self._heap:
            negative_activity, index = self._heap[0]
            if -negative_activity != self.activity[index]:
                heapq.heappop(self._heap)  # stale entry
                self.stale_pops += 1
                continue
            var = self._var_by_index[index]
            if self.store.is_assigned(var):
                heapq.heappop(self._heap)
                self.stale_pops += 1
                continue
            self.picks += 1
            return var, self.phase.get(index, 1)
        return None

    def replenish(self) -> None:
        """Re-add all candidates (after backtracking frees variables)."""
        self._rebuild_heap()

    def save_phase(self, var: Variable, value: int) -> None:
        self.phase[var.index] = value

    def free_candidates(self) -> List[Variable]:
        """All currently unassigned decision candidates."""
        return [
            var for var in self.candidates if not self.store.is_assigned(var)
        ]
