"""Structural decision strategy: RTL justification (Section 4).

``Decide()`` is replaced by Algorithm 2 of the paper: instead of
assigning an arbitrary high-activity variable, the solver maintains a
**J-frontier** of *unjustified* operators — operators whose required
output value/interval is not yet implied by their inputs — and picks
decisions that justify them:

* an atomic Boolean gate whose output sits at its controlled value with
  no controlling input yet (Definition 4.1 rule 1) is justified by
  deciding one input to the controlling value;
* a mux whose select is free and whose output interval is tighter than
  the hull of its data inputs (rule 2) is justified by deciding the
  select towards a branch whose interval intersects the requirement
  (the Figure 4 walk-through).

The frontier is maintained implicitly: every trail event on an
operator's output makes that operator a *candidate*; candidates are
re-checked lazily, highest level first, so justification flows from the
constrained outputs back towards the primary inputs — the breadth-first
trace of Section 4.2.

**J-conflicts (Section 4.3).**  With bounds-consistent propagators, a
frontier entry none of whose branches can meet the requirement is almost
always caught by constraint propagation first (the mux propagator flags
a conflict whose antecedents are precisely the "implying Boolean
literals" the paper traces — see the Figure 4 example reproduced in the
tests).  The defensive J-conflict path here covers the residual case and
reports the same antecedent cut.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.constraints.compile import CompiledSystem
from repro.constraints.propagators import BoolGateProp, LinearEqProp, MuxProp
from repro.constraints.store import Conflict, DomainStore
from repro.constraints.variable import Variable, VarOrigin
from repro.core.decide import ActivityOrder
from repro.rtl.levelize import levelize
from repro.rtl.types import OpKind

Decision = Tuple[Variable, int]


class StructuralDecide:
    """Algorithm 2: justification-driven decision making."""

    def __init__(
        self,
        system: CompiledSystem,
        store: DomainStore,
        order: ActivityOrder,
        tracer=None,
    ):
        self.system = system
        self.store = store
        self.order = order
        #: Optional :class:`repro.obs.TraceEmitter`; when set, every
        #: frontier action becomes a ``jfrontier`` trace event.
        self._trace = tracer
        levels = levelize(system.circuit)
        #: node index -> (negative level, node index) sort key; high
        #: levels (near outputs) are justified first.
        self._level_of: Dict[int, int] = {}
        #: driver node index for each variable index (net-backed only).
        self._node_of_var: Dict[int, int] = {}
        for node in system.circuit.nodes:
            self._level_of[node.index] = levels.get(node.output.index, 0)
            if node.index in system.prop_of_node:
                out_var = system.var(node.output)
                self._node_of_var[out_var.index] = node.index
        #: Persistent candidate set: nodes whose output was ever
        #: constrained.  Entries are checked lazily and never removed, so
        #: backtracking cannot lose frontier entries.
        self._candidates: Set[int] = set()
        self._scanned = 0
        #: Level-0 fixpoint domains (set after pre-processing): only
        #: narrowings *beyond* this baseline are requirements.  Without
        #: it, facts derived by static learning would flood the frontier.
        self._baseline = [var.initial_domain for var in system.variables]

    def snapshot_baseline(self) -> None:
        """Record the current domains as the no-requirement baseline."""
        self._baseline = list(self.store.domains)

    # ------------------------------------------------------------------
    # Frontier maintenance
    # ------------------------------------------------------------------
    def _drain_events(self) -> None:
        self._scanned = min(self._scanned, len(self.store.trail))
        while self._scanned < len(self.store.trail):
            event = self.store.trail[self._scanned]
            self._scanned += 1
            node_index = self._node_of_var.get(event.var.index)
            if node_index is not None:
                self._candidates.add(node_index)

    def frontier(self) -> List[int]:
        """Current J-frontier: unjustified candidate nodes, by level desc."""
        self._drain_events()
        live = []
        for node_index in self._candidates:
            prop = self.system.prop_of_node.get(node_index)
            if prop is None:
                continue
            if self._requirement(prop) is not None:
                live.append(node_index)
        live.sort(key=lambda index: -self._level_of[index])
        return live

    # ------------------------------------------------------------------
    # Justifiability checks (Definition 4.1)
    # ------------------------------------------------------------------
    def _requirement(self, prop) -> Optional[object]:
        """The unjustified requirement of a node, or None if justified."""
        if isinstance(prop, MuxProp):
            return self._mux_requirement(prop)
        if isinstance(prop, BoolGateProp):
            return self._bool_requirement(prop)
        if isinstance(prop, LinearEqProp):
            return self._linear_requirement(prop)
        return None

    def _linear_requirement(self, prop: LinearEqProp) -> Optional[Variable]:
        """Modular arithmetic blocked on its carry/borrow auxiliary.

        An interval requirement on a wrapped add/sub cannot flow through
        to the operands while the carry is free (the constraint is a
        disjunction of the wrapped and unwrapped cases).  Deciding the
        carry is the justification step that unblocks the trace — the
        spirit of Definition 4.1 rule 2: a Boolean-valued input prevents
        the intervals from being determined.
        """
        aux: Optional[Variable] = None
        requirement = False
        for var in prop.variables:
            if var.origin is VarOrigin.AUXILIARY and var.is_bool:
                if self.store.is_assigned(var):
                    return None
                if aux is not None:
                    return None  # more than one free aux: leave to CP
                aux = var
            elif self.store.domains[var.index] != self._baseline[var.index]:
                requirement = True
        return aux if (aux is not None and requirement) else None

    def _mux_requirement(self, prop: MuxProp) -> Optional[object]:
        if self.store.bool_value(prop.sel) is not None:
            return None
        out_domain = self.store.domain(prop.out)
        if out_domain == self._baseline[prop.out.index]:
            return None  # no requirement beyond the level-0 fixpoint
        hull = self.store.domain(prop.then_var).union_hull(
            self.store.domain(prop.else_var)
        )
        if out_domain.contains_interval(hull):
            return None  # output unconstrained beyond its inputs
        return out_domain

    def _bool_requirement(self, prop: BoolGateProp) -> Optional[int]:
        output_value = self.store.bool_value(prop.out)
        if output_value is None:
            return None
        if self._baseline[prop.out.index].is_point:
            return None  # pinned at the level-0 fixpoint: a fact
        kind = prop.kind
        if kind in (OpKind.NOT, OpKind.BUF):
            return None  # implied both ways by propagation
        if kind in (OpKind.XOR, OpKind.XNOR):
            unassigned = [
                v for v in prop.inputs if self.store.bool_value(v) is None
            ]
            return output_value if len(unassigned) >= 2 else None
        controlling = 0 if kind in (OpKind.AND, OpKind.NAND) else 1
        controlled_output = controlling ^ (
            1 if kind in (OpKind.NAND, OpKind.NOR) else 0
        )
        if output_value != controlled_output:
            return None  # non-controlled value: inputs forced by BCP
        input_values = [self.store.bool_value(v) for v in prop.inputs]
        if controlling in input_values:
            return None  # already justified by a controlling input
        if None not in input_values:
            return None  # fully assigned (a conflict is CP's job)
        return output_value

    # ------------------------------------------------------------------
    # Decision selection
    # ------------------------------------------------------------------
    def next_decision(self) -> Union[Decision, Conflict, None]:
        """A justification decision, a J-conflict, or None (frontier empty)."""
        for node_index in self.frontier():
            prop = self.system.prop_of_node[node_index]
            if isinstance(prop, MuxProp):
                outcome = self._justify_mux(prop)
            elif isinstance(prop, LinearEqProp):
                aux = self._linear_requirement(prop)
                # Prefer the unwrapped interpretation (carry/borrow = 0).
                outcome = (aux, 0) if aux is not None else None
            else:
                outcome = self._justify_bool_gate(prop)
            if outcome is not None:
                if self._trace is not None:
                    self._trace.event(
                        "jfrontier",
                        dl=self.store.decision_level,
                        action=(
                            "j-conflict"
                            if isinstance(outcome, Conflict)
                            else "justify"
                        ),
                        node=node_index,
                        level=self._level_of[node_index],
                        op=type(prop).__name__,
                    )
                return outcome
        return None

    def _justify_mux(self, prop: MuxProp) -> Union[Decision, Conflict, None]:
        out_domain = self.store.domain(prop.out)
        then_ok = out_domain.intersects(self.store.domain(prop.then_var))
        else_ok = out_domain.intersects(self.store.domain(prop.else_var))
        if not then_ok and not else_ok:
            # J-conflict: no select value can meet the requirement.  The
            # causes are the implying literals of the blocking intervals
            # (Section 4.3) — exactly the latest events of the mux vars.
            return self._j_conflict(prop)
        if then_ok and not else_ok:
            return prop.sel, 1
        if else_ok and not then_ok:
            return prop.sel, 0
        # Both branches viable: Section 4.4 — prefer the value satisfying
        # the most learned relations (the phase exported by predicate
        # learning), falling back to the configured default phase.
        return prop.sel, self.order.phase.get(prop.sel.index, 1)

    def _justify_bool_gate(
        self, prop: BoolGateProp
    ) -> Union[Decision, Conflict, None]:
        kind = prop.kind
        unassigned = [
            v for v in prop.inputs if self.store.bool_value(v) is None
        ]
        if not unassigned:
            return None
        if kind in (OpKind.XOR, OpKind.XNOR):
            var = self._pick_input(unassigned)
            return var, self.order.phase.get(var.index, 1)
        controlling = 0 if kind in (OpKind.AND, OpKind.NAND) else 1
        var = self._pick_input(unassigned)
        return var, controlling

    def _pick_input(self, candidates: List[Variable]) -> Variable:
        """Heuristic of Section 4.2: fanout count and input distance.

        Highest combined weight (static learning weight + activity,
        which is fanout-seeded) wins; ties go to the lower-level input
        (closer to the primary inputs).
        """

        def weight(var: Variable) -> Tuple[float, int]:
            activity = self.order.activity.get(var.index, 0.0)
            static = self.order.static_weight.get(var.index, 0.0)
            node_index = self._node_of_var.get(var.index)
            level = (
                self._level_of.get(node_index, 0)
                if node_index is not None
                else 0
            )
            return (activity + static, -level)

        return max(candidates, key=weight)

    def _j_conflict(self, prop: MuxProp) -> Conflict:
        antecedents = tuple(
            event_id
            for var in prop.variables
            if (event_id := self.store.latest_event[var.index]) is not None
        )
        return Conflict(source="j-conflict", antecedents=antecedents, var=prop.out)
