"""Incremental solver sessions: one compiled system, many queries.

A :class:`SolverSession` wraps a persistent :class:`HdpllSolver` and
keeps everything expensive alive across repeated ``solve(assumptions)``
calls: the compiled constraint network, the learned-clause database,
variable activities/phases, and the interval-interning state.  Each
query asserts its assumptions at *retractable* decision levels (one per
assumption, re-asserted lazily after backjumps and restarts) and fully
undoes them before returning, so level 0 only ever holds facts that are
consequences of the problem itself — which is exactly what makes the
learned clauses sound to keep, and to re-instantiate at later time
frames (see :mod:`repro.bmc.session`).

The session also owns the growth path: :meth:`extend` compiles a node
suffix of the (mutated-in-place) circuit into the live system, and
:meth:`learn` runs predicate learning restricted to an explicit
candidate list, so BMC drivers can probe only the appended frame.

Accelerated propagation cores survive extension: the engine keys its
specialized-kernel plan by the netlist signature of the appended node
suffix (see ``HdpllSolver.extend_system``), so re-unrolling the same
frame shape in a later sweep — or in a sibling pool worker after
``reset_interval_cache()`` — re-derives identical kernels, and the
parity contract (same trail, same counters) holds across ``extend``
boundaries exactly as it does for a fresh solver.
"""

from __future__ import annotations

import re
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.constraints.clause import BoolLit, Clause, Literal, WordLit
from repro.constraints.compile import CompiledExtension
from repro.constraints.variable import Variable
from repro.core.config import SolverConfig
from repro.core.hdpll import AssumptionValue, HdpllSolver
from repro.core.predlearn import (
    LearnReport,
    _clause_key,
    run_predicate_learning,
)
from repro.core.result import SolverResult, SolverStats, Status
from repro.obs import Observation
from repro.rtl.circuit import Circuit

#: Frame suffix embedded in unrolled variable names (``net@3``,
#: ``net@3__carry``); shifting a clause in time is a pure rename.
_FRAME_RE = re.compile(r"@(\d+)")


def shift_name(name: str, delta: int) -> str:
    """Rename every ``@frame`` occurrence ``delta`` frames later."""
    return _FRAME_RE.sub(
        lambda match: f"@{int(match.group(1)) + delta}", name
    )


def frame_span(names: Iterable[str]) -> Optional[Tuple[int, int]]:
    """(min, max) frame referenced by the names, or None when any name
    carries no frame tag (such a clause cannot be shifted)."""
    lo: Optional[int] = None
    hi: Optional[int] = None
    for name in names:
        frames = [int(m) for m in _FRAME_RE.findall(name)]
        if not frames:
            return None
        lo = min(frames) if lo is None else min(lo, *frames)
        hi = max(frames) if hi is None else max(hi, *frames)
    if lo is None or hi is None:
        return None
    return lo, hi


class SolverSession:
    """Repeated satisfiability queries over a growing compiled system."""

    def __init__(
        self,
        circuit: Circuit,
        config: Optional[SolverConfig] = None,
        observation: Optional[Observation] = None,
    ):
        self.config = config or SolverConfig()
        self.solver = HdpllSolver(
            circuit, self.config, observation, persistent=True
        )
        self._trace = self.solver._trace
        self._prof = self.solver._prof
        #: name -> variable, covering net *and* auxiliary variables (the
        #: compiled system only resolves nets); clause shifting renames
        #: through this map.
        self._var_by_name: Dict[str, Variable] = {}
        self._absorb_names(self.solver.system.variables)
        #: Dedup keys of session-installed (shifted) clauses.
        self._installed_keys: Set[Tuple] = set()
        #: Session counters, stamped onto every result's stats.
        self.session_solves = 0
        self.clauses_shifted = 0
        self.probe_cache_hits = 0
        self.probe_cache_misses = 0
        self.relations_learned = 0
        self.learn_seconds = 0.0
        #: Level-0 refutation found during extension/learning: every
        #: subsequent query is unconditionally UNSAT.
        self.root_conflict = False
        conflict = self.solver._saturate_level0()
        if conflict is not None:
            self.root_conflict = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Mapping[str, AssumptionValue],
        timeout: Optional[float] = None,
    ) -> SolverResult:
        """One satisfiability query; assumptions are fully retracted
        before returning."""
        self.session_solves += 1
        if self.root_conflict:
            result = SolverResult(
                status=Status.UNSAT,
                model=None,
                stats=SolverStats(),
                note="level-0 refutation during session setup",
            )
            self._stamp(result.stats)
            return result
        # Per-call timeout override: applied for this query only and
        # restored afterwards, so one short-deadline request can never
        # shorten the session default for later callers (which pass
        # ``timeout=None`` expecting the session's configured budget).
        # Fatal for a shared warm-session cache otherwise.
        saved_config = self.solver.config
        if timeout is not None and timeout != saved_config.timeout:
            self.solver.config = saved_config.with_overrides(
                timeout=timeout
            )
        start = time.perf_counter()
        try:
            result = self.solver.solve(assumptions)
        finally:
            self.solver.config = saved_config
        self._stamp(result.stats)
        if self._trace is not None:
            self._trace.event(
                "session-solve",
                dl=0,
                n=self.session_solves,
                status=result.status.value,
                assumptions=len(assumptions),
                seconds=time.perf_counter() - start,
            )
        return result

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def extend(self, nodes) -> CompiledExtension:
        """Compile appended circuit nodes and reach the new level-0
        fixpoint (frame-extension compile path)."""
        extension = self.solver.extend_system(nodes)
        self._absorb_names(extension.variables)
        conflict = self.solver._saturate_level0()
        if conflict is not None:
            self.root_conflict = True
        return extension

    def learn(
        self, candidates, deadline: Optional[float] = None
    ) -> LearnReport:
        """Predicate learning restricted to ``candidates`` (net list).

        ``deadline`` is a ``time.perf_counter()`` instant threaded into
        the probe phase's cooperative :class:`ProbeDeadline` budget —
        the serve daemon uses it so a request that triggers a cold
        session warm-up still honours its per-request deadline.
        """
        start = time.perf_counter()
        if self._prof is not None:
            with self._prof.phase("learn"):
                report = self._run_learning(candidates, deadline)
        else:
            report = self._run_learning(candidates, deadline)
        self.learn_seconds += time.perf_counter() - start
        self.relations_learned += report.relations_learned
        if report.root_conflict:
            self.root_conflict = True
        return report

    def _run_learning(
        self, candidates, deadline: Optional[float] = None
    ) -> LearnReport:
        solver = self.solver
        return run_predicate_learning(
            solver.system,
            solver.store,
            solver.engine,
            solver.order,
            threshold=solver.config.learning_threshold,
            deadline=deadline,
            phase_hints=solver.config.learned_phase_hints,
            tracer=self._trace,
            candidates=candidates,
        )

    # ------------------------------------------------------------------
    # Clause shifting
    # ------------------------------------------------------------------
    def learned_clauses(self) -> List[Clause]:
        """Live learned clauses in the session's database."""
        return [
            clause
            for clause in self.solver.engine.clause_db.clauses
            if clause.learned
        ]

    def install_shifted(
        self,
        clauses: Iterable[Clause],
        rename: Callable[[str], str],
    ) -> int:
        """Re-instantiate learned clauses under a variable renaming.

        Every literal's variable is mapped through ``rename`` and the
        session's name table; a clause is skipped when any renamed
        variable does not exist (the target frame lacks that net) or
        when an identical clause was already installed by the session.
        Installation happens at level 0, so shifted unit facts become
        permanent domain narrowings — sound, because shifting is a
        syntactic embedding of the constraint system into itself (see
        docs/performance.md).  Returns the number installed.
        """
        engine = self.solver.engine
        installed = 0
        for clause in clauses:
            literals = self._rename_literals(clause.literals, rename)
            if literals is None:
                continue
            key = _clause_key(literals)
            if key in self._installed_keys:
                continue
            self._installed_keys.add(key)
            origin = (
                "predicate-shifted"
                if clause.origin.startswith("predicate")
                else "conflict-shifted"
            )
            copy = Clause(literals=literals, learned=True, origin=origin)
            conflict = engine.add_clause(copy)
            if conflict is None:
                conflict = engine.propagate()
            if conflict is not None:
                # The clause is in the database (a root refutation, so
                # every later query is UNSAT); count it and fall through
                # to the shared accounting below — an early return here
                # would leave ``clauses_shifted`` undercounting and skip
                # the clause-DB cap on exactly this path.
                installed += 1
                self.root_conflict = True
                break
            installed += 1
        self.clauses_shifted += installed
        cap = self.config.clause_db_max_learned
        if cap:
            self.solver.engine.clause_db.enforce_cap(cap)
        return installed

    def _rename_literals(
        self,
        literals: Tuple[Literal, ...],
        rename: Callable[[str], str],
    ) -> Optional[Tuple[Literal, ...]]:
        renamed: List[Literal] = []
        for literal in literals:
            target = self._var_by_name.get(rename(literal.var.name))
            if target is None:
                return None
            if isinstance(literal, BoolLit):
                renamed.append(BoolLit(target, positive=literal.positive))
            elif isinstance(literal, WordLit):
                renamed.append(
                    WordLit(
                        target, literal.interval, positive=literal.positive
                    )
                )
            else:  # pragma: no cover - new literal kinds must be handled
                return None
        return tuple(renamed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _absorb_names(self, variables: Iterable[Variable]) -> None:
        for var in variables:
            self._var_by_name[var.name] = var

    def _stamp(self, stats: SolverStats) -> None:
        """Fold session-lifetime counters into a query's stats."""
        stats.session_solves = self.session_solves
        stats.clauses_shifted = self.clauses_shifted
        stats.probe_cache_hits = self.probe_cache_hits
        stats.probe_cache_misses = self.probe_cache_misses
        lookups = self.probe_cache_hits + self.probe_cache_misses
        stats.probe_cache_hit_rate = (
            self.probe_cache_hits / lookups if lookups else 0.0
        )
        stats.learned_relations = self.relations_learned
        stats.learn_time = self.learn_seconds
