"""HDPLL core: the paper's primary contribution.

* :class:`HdpllSolver` / :func:`solve_circuit` — Algorithm 1.
* :mod:`repro.core.predlearn` — Section 3 predicate learning.
* :mod:`repro.core.justify` — Section 4 structural decision strategy.
* :mod:`repro.core.recursive` — classic recursive learning (Section 2.3).
"""

from repro.core.abstraction import (
    AbstractionResult,
    predicate_abstraction_check,
    state_predicates,
)
from repro.core.config import (
    HDPLL_BASE,
    HDPLL_P,
    HDPLL_S,
    HDPLL_SP,
    SolverConfig,
)
from repro.core.hdpll import HdpllSolver, solve_circuit
from repro.core.predlearn import LearnReport, run_predicate_learning
from repro.core.recursive import RecursiveLearner, justification_options
from repro.core.result import SolverResult, SolverStats, Status
from repro.core.session import SolverSession, frame_span, shift_name

__all__ = [
    "AbstractionResult",
    "HDPLL_BASE",
    "HDPLL_P",
    "HDPLL_S",
    "HDPLL_SP",
    "HdpllSolver",
    "LearnReport",
    "RecursiveLearner",
    "SolverConfig",
    "SolverResult",
    "SolverSession",
    "SolverStats",
    "Status",
    "frame_span",
    "justification_options",
    "predicate_abstraction_check",
    "run_predicate_learning",
    "shift_name",
    "solve_circuit",
    "state_predicates",
]
