"""HDPLL: the hybrid DPLL solver of Algorithm 1.

The loop interleaves decisions on Boolean variables with hybrid deduction
(``Ddeduce``: Boolean + interval constraint propagation to bounds
consistency).  Conflicts are analysed on the hybrid implication graph and
learned as clauses with non-chronological backtracking.  When every
decision variable is assigned and the box is bounds-consistent, the
integer-linear leaf check (:mod:`repro.core.fme_leaf`) certifies or
refutes a point solution, exactly as in Section 2.4 of the paper.

Optional strategies (the paper's contributions):

* ``predicate_learning`` — Section 3 static learning pre-processing, run
  before search (see :mod:`repro.core.predlearn`).
* ``structural_decisions`` — Section 4 justification-driven ``Decide``
  (see :mod:`repro.core.justify`).

Observability: pass an :class:`repro.obs.Observation` to stream a
structured JSONL trace of every decision / propagation batch / conflict
/ restart / J-frontier action / FME leaf, and to collect a hierarchical
phase profile (learn / search / BCP / ICP / conflict / FME).  Without
one, every instrumentation point is a single ``is None`` test — the
bench regression gate holds the disabled path to zero measurable cost.
"""

from __future__ import annotations

import logging
import time
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ResourceLimitError, SolverError
from repro.intervals import Interval, interval_cache_stats
from repro.constraints.clause import Clause
from repro.constraints.compile import (
    CompiledExtension,
    CompiledSystem,
    compile_circuit,
    extend_compiled,
    netlist_signature,
)
from repro.constraints.engine import PropagationEngine
from repro.constraints.store import ASSUMPTION, Conflict, DomainStore
from repro.core.config import SolverConfig
from repro.core.conflict import analyze_conflict, decision_cut_clause
from repro.core.decide import ActivityOrder
from repro.core.fme_leaf import check_solution_box
from repro.core.result import SolverResult, SolverStats, Status
from repro.obs import Observation
from repro.obs.trace import TRACE_SCHEMA_VERSION
from repro.rtl.circuit import Circuit
from repro.rtl.simulate import simulate_combinational

logger = logging.getLogger(__name__)

AssumptionValue = Union[int, Interval]

#: Sentinel decision: the J-frontier just emptied; try certifying early.
_EARLY_LEAF = object()
#: Sentinel result: early certification inconclusive; resume decisions.
_FALLBACK = object()

#: Returned by ``_assert_assumption_prefix`` when an assumption directly
#: contradicts the accumulated domain: UNSAT under the current
#: assumptions, with no clause to learn.
_ASSUMPTION_REFUTED = object()

#: Recognised ``SolverConfig.restart_strategy`` values.
RESTART_STRATEGIES = ("geometric", "luby")


def luby(index: int) -> int:
    """The ``index``-th term (1-based) of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... — the universally
    optimal schedule of Luby, Sinclair and Zuckerman, used by MiniSat's
    descendants.  Multiplied by ``restart_interval`` to get a budget.
    """
    if index < 1:
        raise ValueError(f"luby index must be >= 1, got {index}")
    size = 1
    sequence = 0
    while size < index:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index - 1:
        size = (size - 1) // 2
        sequence -= 1
        index = ((index - 1) % size) + 1
    return 1 << sequence


class HdpllSolver:
    """Satisfiability of a combinational RTL circuit under assumptions."""

    def __init__(
        self,
        circuit: Circuit,
        config: Optional[SolverConfig] = None,
        observation: Optional[Observation] = None,
        persistent: bool = False,
    ):
        self.circuit = circuit
        self.config = config or SolverConfig()
        if self.config.restart_strategy not in RESTART_STRATEGIES:
            raise SolverError(
                f"unknown restart strategy "
                f"{self.config.restart_strategy!r}; "
                f"expected one of {RESTART_STRATEGIES}"
            )
        #: Persistent (session) mode: the solver answers repeated
        #: ``solve`` calls, asserting assumptions at retractable decision
        #: levels and undoing them afterwards, and its constraint system
        #: can grow via :meth:`extend_system`.  Predicate learning is
        #: then driven externally (see :class:`repro.core.session.SolverSession`).
        self.persistent = persistent
        tracer = observation.tracer if observation is not None else None
        #: Trace emitter, or None when tracing is off (the common case);
        #: every emission site guards on this being non-None.
        self._trace = tracer if tracer is not None and tracer.enabled else None
        self._prof = observation.profiler if observation is not None else None
        self.system: CompiledSystem = compile_circuit(
            circuit,
            mux_select_implication=self.config.mux_select_implication,
        )
        self.store = DomainStore(self.system.variables)
        plan_key = None
        if self.config.engine_impl != "reference":
            plan_key = netlist_signature(
                circuit.topological_nodes(),
                "msi" if self.config.mux_select_implication else "",
            )
        self.engine = PropagationEngine(
            self.store,
            self.system.propagators,
            impl=self.config.engine_impl,
            plan_key=plan_key,
        )
        clause_db = self.engine.clause_db
        clause_db.core_lbd_max = self.config.clause_db_core_lbd
        clause_db.mid_lbd_max = self.config.clause_db_mid_lbd
        clause_db.mid_staleness = self.config.clause_db_mid_staleness
        if self._prof is not None:
            self.engine.enable_timing()
        self.order = ActivityOrder(
            self.system,
            self.store,
            default_phase=self.config.default_phase,
            decay=self.config.activity_decay,
        )
        self.stats = SolverStats()
        self._structural = None
        if self.config.structural_decisions:
            from repro.core.justify import StructuralDecide

            self._structural = StructuralDecide(
                self.system, self.store, self.order, tracer=self._trace
            )
        self._deadline: Optional[float] = None
        #: A solver instance answers exactly one query (unless persistent).
        self._consumed = False
        #: Pending interval assumptions, one per retractable decision
        #: level (persistent mode); the search loop re-asserts the prefix
        #: lazily after every backjump or restart, MiniSat-style.
        self._assumption_plan: Optional[
            List[Tuple["Variable", Interval]]
        ] = None
        #: Level 0 still needs an initial/extension fixpoint pass.
        self._pending_saturation = True
        #: Cumulative engine/order counters at the start of the current
        #: solve; ``_finish`` reports deltas so persistent sessions get
        #: per-query stats.  All zero in single-shot mode.
        self._counter_marks: Dict[str, int] = {}
        #: (hits, misses) of the interval interning cache at solve start,
        #: so the reported hit rate covers only this solve.
        self._cache_mark = interval_cache_stats()
        # Attempt an early solution-box certification whenever the
        # J-frontier has just emptied (the paper's Decide() == done with
        # free don't-care variables remaining).
        self._early_leaf_pending = True
        #: How the most recent (var, value) decision was chosen
        #: ("activity" or "structural") — trace metadata only.
        self._decision_kind = "activity"
        #: Engine BCP/ICP seconds accrued before search began, so the
        #: profiler can split propagation time between learn and search.
        self._learn_bcp = 0.0
        self._learn_icp = 0.0
        #: Optional clause-sharing channel (the portfolio layer): an
        #: object with ``export(clause)`` — called with every learned
        #: clause — and ``poll() -> list[Clause]`` — drained at the top
        #: of the search loop; returned clauses are installed against
        #: the *current* trail (re-watched, re-checked) as learned
        #: clauses.  ``None`` keeps the hot path a single attribute test.
        self.share = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(
        self, assumptions: Mapping[str, AssumptionValue]
    ) -> SolverResult:
        """Check satisfiability under net-name assumptions.

        ``assumptions`` maps net names to required values (ints) or
        intervals.  The solver instance is single-shot unless constructed
        with ``persistent=True``, in which case assumptions are asserted
        at retractable decision levels and fully undone before returning,
        keeping learned clauses and activities for the next query.
        """
        if self._consumed and not self.persistent:
            raise SolverError(
                "HdpllSolver is single-shot; construct a new instance "
                "per query"
            )
        self._consumed = True
        if self.persistent:
            self._begin_persistent_solve()
        self._cache_mark = interval_cache_stats()
        tracer = self._trace
        start = time.perf_counter()
        if self.config.timeout is not None:
            self._deadline = start + self.config.timeout
        if tracer is not None:
            tracer.event(
                "solve_begin",
                dl=0,
                schema=TRACE_SCHEMA_VERSION,
                vars=len(self.system.variables),
                propagators=len(self.system.propagators),
            )
        logger.debug(
            "solve begin: circuit=%s vars=%d propagators=%d",
            self.circuit.name,
            len(self.system.variables),
            len(self.system.propagators),
        )

        try:
            result = self._solve(assumptions, start)
        finally:
            if self.persistent:
                # Retract every assumption level so the session is back
                # at the shared level-0 state for the next query.
                self._backtrack(0)
                self._assumption_plan = None

        # Throughput gauges; computed here (not in _finish) because the
        # time split is only final once _solve returned.  The learning
        # phase drives the same propagation engine (and typically most
        # of the propagations), so the denominator covers both phases.
        engine_seconds = self.stats.solve_time + self.stats.learn_time
        if engine_seconds > 0:
            self.stats.props_per_sec = (
                self.stats.propagations / engine_seconds
            )
            self.stats.narrowings_per_sec = (
                self.stats.narrowings / engine_seconds
            )

        if self._prof is not None:
            self._attribute_engine_phases()
        if tracer is not None:
            # The profile snapshot precedes solve_end: a complete trace
            # always *ends* with its solve_end event.
            if self._prof is not None:
                tracer.event(
                    "profile", dl=0, phases=self._prof.report()["phases"]
                )
            tracer.event(
                "solve_end",
                dl=0,
                status=result.status.value,
                decisions=self.stats.decisions,
                conflicts=self.stats.conflicts,
                solve_time=self.stats.solve_time,
                learn_time=self.stats.learn_time,
            )
            tracer.flush()
        logger.debug(
            "solve end: %s decisions=%d conflicts=%d solve_time=%.3fs",
            result.status.value,
            self.stats.decisions,
            self.stats.conflicts,
            self.stats.solve_time,
        )
        return result

    def _solve(
        self, assumptions: Mapping[str, AssumptionValue], start: float
    ) -> SolverResult:
        prof = self._prof
        if self.config.predicate_learning and not self.persistent:
            learn_start = time.perf_counter()
            if prof is not None:
                with prof.phase("learn"):
                    report = self._run_learning()
            else:
                report = self._run_learning()
            self.stats.learned_relations = report.relations_learned
            self.stats.learn_time = time.perf_counter() - learn_start
            self._learn_bcp = self.engine.bcp_time
            self._learn_icp = self.engine.icp_time
            if self._trace is not None:
                self._trace.event(
                    "learn_done",
                    dl=0,
                    relations=report.relations_learned,
                    probes=report.probes,
                    seconds=self.stats.learn_time,
                )
            if report.root_conflict:
                self.stats.solve_time = time.perf_counter() - start
                return self._finish(Status.UNSAT)

        if prof is not None:
            with prof.phase("search"):
                return self._search(assumptions, start)
        return self._search(assumptions, start)

    def _run_learning(self):
        from repro.core.predlearn import run_predicate_learning

        return run_predicate_learning(
            self.system,
            self.store,
            self.engine,
            self.order,
            threshold=self.config.learning_threshold,
            deadline=self._deadline,
            phase_hints=self.config.learned_phase_hints,
            tracer=self._trace,
        )

    def _search(
        self, assumptions: Mapping[str, AssumptionValue], start: float
    ) -> SolverResult:
        if self.persistent:
            conflict = self._saturate_level0()
            if conflict is not None:
                self.stats.solve_time = (
                    time.perf_counter() - start - self.stats.learn_time
                )
                return self._finish(Status.UNSAT)
            self._assumption_plan = [
                (
                    self.system.var_by_name(name),
                    value
                    if isinstance(value, Interval)
                    else Interval.point(value),
                )
                for name, value in assumptions.items()
            ]
            result = self._search_loop(assumptions)
            self.stats.solve_time = (
                time.perf_counter() - start - self.stats.learn_time
            )
            return result
        conflict = self._apply_assumptions(assumptions)
        if conflict is not None:
            self.stats.solve_time = (
                time.perf_counter() - start - self.stats.learn_time
            )
            return self._finish(Status.UNSAT)
        result = self._search_loop(assumptions)
        self.stats.solve_time = (
            time.perf_counter() - start - self.stats.learn_time
        )
        return result

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _apply_assumptions(
        self, assumptions: Mapping[str, AssumptionValue]
    ) -> Optional[Conflict]:
        # Reach the circuit-only level-0 fixpoint first: it is the
        # baseline against which structural justification measures
        # requirements (narrowings caused by the proposition and by
        # search, not by the circuit or static learning).
        self.engine.enqueue_all()
        conflict = self._propagate()
        if conflict is not None:
            return conflict
        if self._structural is not None:
            self._structural.snapshot_baseline()
        for name, value in assumptions.items():
            var = self.system.var_by_name(name)
            interval = (
                value if isinstance(value, Interval) else Interval.point(value)
            )
            outcome = self.store.assume(var, interval)
            if isinstance(outcome, Conflict):
                return outcome
        self.engine.enqueue_all()
        return self._propagate()

    # ------------------------------------------------------------------
    # Persistent-session support
    # ------------------------------------------------------------------
    def _begin_persistent_solve(self) -> None:
        """Per-query reset: fresh stats, delta marks, budget, search state."""
        if self.store.decision_level != 0:
            raise SolverError(
                "persistent solve must start at level 0 (previous query "
                "not fully retracted)"
            )
        self.stats = SolverStats()
        self._counter_marks = {
            "propagations": self.engine.propagation_count,
            "propagator_wakeups": self.engine.wakeup_count,
            "clause_visits": self.engine.clause_db.clause_visits,
            "watch_moves": self.engine.clause_db.watch_moves,
            "heap_picks": self.order.picks,
            "heap_stale_pops": self.order.stale_pops,
            "narrowings": self.store.narrowings,
            "props_filtered": self.engine.props_filtered,
        }
        # Engine clock snapshot so profiler attribution stays per-query;
        # session-level learning accounts for its own propagation time.
        self._learn_bcp = self.engine.bcp_time
        self._learn_icp = self.engine.icp_time
        self._early_leaf_pending = True
        self._decision_kind = "activity"
        self._deadline = None

    def _saturate_level0(self) -> Optional[Conflict]:
        """Bring level 0 to the circuit fixpoint after creation/extension."""
        if not self._pending_saturation:
            return None
        self.engine.enqueue_all()
        conflict = self._propagate()
        if conflict is not None:
            return conflict
        self._pending_saturation = False
        if self._structural is not None:
            self._structural.snapshot_baseline()
        return None

    def extend_system(self, nodes) -> CompiledExtension:
        """Compile appended circuit nodes into the live constraint system.

        The frame-extension path: new variables join the store at their
        initial domains, new propagators are registered and scheduled,
        Boolean net variables join the decision order.  The level-0
        fixpoint and the structural-decision baseline are refreshed
        lazily on the next solve.
        """
        if self.store.decision_level != 0:
            raise SolverError("extension is only legal at level 0")
        nodes = list(nodes)
        extension = extend_compiled(
            self.system,
            nodes,
            mux_select_implication=self.config.mux_select_implication,
        )
        self.store.add_variables(extension.variables)
        plan_key = None
        if self.engine.impl != "reference":
            plan_key = netlist_signature(
                nodes,
                "msi" if self.config.mux_select_implication else "",
            )
        self.engine.extend(extension.propagators, plan_key)
        self.order.add_candidates(self.system, extension.variables)
        if self._structural is not None:
            from repro.core.justify import StructuralDecide

            # The justification frontier is levelization-based; rebuild
            # it over the grown circuit (O(circuit), amortised by the
            # recompilation it replaces).
            self._structural = StructuralDecide(
                self.system, self.store, self.order, tracer=self._trace
            )
        self._pending_saturation = True
        return extension

    def _assert_assumption_prefix(self):
        """Assert pending assumptions, one retractable level each.

        Called whenever the current decision level is inside the
        assumption prefix (query start, after backjumps, after
        restarts).  A level is pushed even when the assumption is
        already entailed, keeping level k <=> assumption k-1 alignment.

        Returns ``None`` when the whole prefix is asserted, a
        :class:`Conflict` from propagation (the caller analyses it — the
        learned clause is globally valid because assumption events enter
        it as literals), or :data:`_ASSUMPTION_REFUTED` when an
        assumption directly contradicts the accumulated domain.  The
        refutation case must NOT go through conflict analysis: the
        failed ``narrow`` leaves no event for the assumption side, so
        any clause built from the remaining antecedents would elide the
        assumption and claim unconditional validity (MiniSat likewise
        answers final-conflict analysis without learning).
        """
        plan = self._assumption_plan
        store = self.store
        while store.decision_level < len(plan):
            var, interval = plan[store.decision_level]
            store.push_level()
            outcome = store.narrow(var, interval, ASSUMPTION)
            if isinstance(outcome, Conflict):
                return _ASSUMPTION_REFUTED
            conflict = self._propagate()
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _search_loop(
        self, assumptions: Mapping[str, AssumptionValue]
    ) -> SolverResult:
        tracer = self._trace
        prof = self._prof
        restart_budget = self.config.restart_interval
        conflicts_since_restart = 0

        while True:
            if self._out_of_budget():
                return self._finish(Status.UNKNOWN, note=self._budget_note())

            if self.share is not None:
                conflict = self._absorb_shared()
                if conflict is not None:
                    final, resolved = self._resolve_conflicts(
                        conflict, bump_source=True
                    )
                    if final is not None:
                        return final
                    conflicts_since_restart += resolved
                    continue

            if (
                self._assumption_plan
                and self.store.decision_level < len(self._assumption_plan)
            ):
                conflict = self._assert_assumption_prefix()
                if conflict is _ASSUMPTION_REFUTED:
                    return self._finish(
                        Status.UNSAT,
                        note="assumption contradicts implied domain",
                    )
                if conflict is not None:
                    final, resolved = self._resolve_conflicts(
                        conflict, bump_source=True
                    )
                    if final is not None:
                        return final
                    conflicts_since_restart += resolved
                    continue

            if prof is not None:
                begin = prof.now()
                decision = self._next_decision()
                prof.add("search/decide", prof.now() - begin)
            else:
                decision = self._next_decision()
            if decision is _EARLY_LEAF:
                # J-frontier empty but free don't-care variables remain:
                # try certifying the box over the active constraints.
                # Success must survive model verification; otherwise fall
                # back to assigning the remaining variables.
                leaf_result = self._leaf_check(assumptions, strict=False)
                if leaf_result is _FALLBACK:
                    continue
                if leaf_result is not None:
                    return leaf_result
                conflict = None  # box refuted; clause installed, continue
            elif decision is None:
                # Decide() == done: certify the solution box.
                leaf_result = self._leaf_check(assumptions)
                assert leaf_result is not _FALLBACK
                if leaf_result is not None:
                    return leaf_result
                conflict = None  # leaf refuted; clause installed, continue
            elif isinstance(decision, Conflict):
                conflict = decision
            else:
                var, value = decision
                self.store.decide_bool(var, value)
                self.order.save_phase(var, value)
                self.stats.decisions += 1
                self.stats.max_decision_level = max(
                    self.stats.max_decision_level, self.store.decision_level
                )
                if tracer is not None:
                    tracer.event(
                        "decision",
                        dl=self.store.decision_level,
                        var=var.name,
                        value=value,
                        kind=self._decision_kind,
                    )
                conflict = self._propagate()

            final, resolved = self._resolve_conflicts(
                conflict, bump_source=True
            )
            if final is not None:
                return final
            conflicts_since_restart += resolved

            if (
                self.config.restart_interval
                and conflicts_since_restart >= restart_budget
            ):
                self.stats.restarts += 1
                conflicts_since_restart = 0
                if self.config.restart_strategy == "luby":
                    restart_budget = self.config.restart_interval * luby(
                        self.stats.restarts + 1
                    )
                else:
                    restart_budget = int(
                        restart_budget * self.config.restart_multiplier
                    )
                if tracer is not None:
                    tracer.event(
                        "restart",
                        dl=self.store.decision_level,
                        n=self.stats.restarts,
                        conflicts=self.stats.conflicts,
                        strategy=self.config.restart_strategy,
                    )
                self._backtrack(0)

    def _next_decision(self):
        """Next decision: (var, value), a J-conflict, the early-leaf
        marker, or None when every decision variable is assigned."""
        if self._structural is not None:
            outcome = self._structural.next_decision()
            if outcome is not None:
                if isinstance(outcome, Conflict):
                    self.stats.j_conflicts += 1
                else:
                    self.stats.structural_decisions += 1
                    self._decision_kind = "structural"
                self._early_leaf_pending = True
                return outcome
            if self._early_leaf_pending:
                self._early_leaf_pending = False
                if self.order.pick() is not None:
                    return _EARLY_LEAF
        self._decision_kind = "activity"
        return self.order.pick()

    # ------------------------------------------------------------------
    # Propagation / conflict bookkeeping
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[Conflict]:
        """``engine.propagate()`` plus optional batch trace/profiling."""
        tracer = self._trace
        prof = self._prof
        if tracer is None and prof is None:
            return self.engine.propagate()
        engine = self.engine
        props_before = engine.propagation_count
        trail_before = len(self.store.trail)
        begin = time.perf_counter()
        conflict = engine.propagate()
        elapsed = time.perf_counter() - begin
        if prof is not None:
            prof.add("search/propagate", elapsed)
        if tracer is not None:
            tracer.event(
                "propagate",
                dl=self.store.decision_level,
                props=engine.propagation_count - props_before,
                events=len(self.store.trail) - trail_before,
                conflict=conflict is not None,
            )
        return conflict

    def _absorb_shared(self) -> Optional[Conflict]:
        """Install clauses arriving on the sharing channel.

        Installation happens against the *current* trail:
        :meth:`ClauseDatabase.add_clause` re-watches the literals and
        detects unit/false clauses, so an imported clause may propagate
        immediately or surface a conflict — the caller resolves it like
        any other.  Sound because every shared clause is globally valid
        (conflict analysis keeps assumption events as literals).
        """
        clauses = self.share.poll()
        if not clauses:
            return None
        for clause in clauses:
            self.stats.clauses_imported += 1
            conflict = self.engine.add_clause(clause)
            if conflict is None:
                conflict = self._propagate()
            if conflict is not None:
                return conflict
        return None

    def _clause_lbd(self, clause: Clause) -> int:
        """Literal-block distance: distinct decision levels in the clause
        (computed before backtracking, while the literals' levels are
        still on the trail)."""
        levels = set()
        level_of = self.store.level_of_var
        for literal in clause.literals:
            level = level_of(literal.var)
            if level:
                levels.add(level)
        return len(levels)

    def _resolve_conflicts(
        self, conflict: Optional[Conflict], bump_source: bool
    ) -> Tuple[Optional[SolverResult], int]:
        """Drain a conflict chain: analyse, learn, backtrack, re-propagate.

        Returns ``(final_result, resolved_count)``; the result is None
        when search can resume.  ``bump_source`` preserves the historical
        asymmetry that only main-loop conflicts bump the activity of a
        conflicting source clause (FME refutation chains do not).
        """
        tracer = self._trace
        prof = self._prof
        resolved = 0
        while conflict is not None:
            if self._out_of_budget():
                return (
                    self._finish(Status.UNKNOWN, note=self._budget_note()),
                    resolved,
                )
            self.stats.conflicts += 1
            resolved += 1
            if bump_source and isinstance(conflict.source, Clause):
                conflict.source.activity += 1.0
            if prof is not None:
                begin = prof.now()
                analysis = analyze_conflict(
                    conflict,
                    self.store,
                    hybrid_word_literals=self.config.hybrid_learned_clauses,
                    minimize=self.config.clause_minimization,
                )
                prof.add("search/conflict", prof.now() - begin)
            else:
                analysis = analyze_conflict(
                    conflict,
                    self.store,
                    hybrid_word_literals=self.config.hybrid_learned_clauses,
                    minimize=self.config.clause_minimization,
                )
            if analysis is None:
                return self._finish(Status.UNSAT), resolved
            self.stats.literals_minimized += analysis.literals_minimized
            analysis.clause.lbd = self._clause_lbd(analysis.clause)
            if tracer is not None:
                tracer.event(
                    "conflict",
                    dl=self.store.decision_level,
                    n=self.stats.conflicts,
                    size=len(analysis.clause.literals),
                    words=analysis.word_literal_count,
                    backtrack=analysis.backtrack_level,
                    lbd=analysis.clause.lbd,
                    minimized=analysis.literals_minimized,
                )
            if self.share is not None:
                self.share.export(analysis.clause)
            self.order.bump_clause(analysis.clause)
            self.order.decay()
            conflict = self._install_learned(
                analysis.clause, analysis.backtrack_level
            )
        return None, resolved

    def _backtrack(self, level: int) -> None:
        self.store.backtrack_to(level)
        self.engine.notify_backtrack()
        self.order.replenish()

    def _install_learned(
        self, clause: Clause, backtrack_level: int
    ) -> Optional[Conflict]:
        """Backtrack, add the clause, and re-propagate."""
        self._backtrack(backtrack_level)
        self.stats.learned_clauses += 1
        self.stats.registry.histogram("learned_clause_size").observe(
            len(clause.literals)
        )
        interval = self.config.clause_db_reduce_interval
        if interval and self.stats.learned_clauses % interval == 0:
            self.engine.clause_db.reduce_learned()
        cap = self.config.clause_db_max_learned
        if cap and self.stats.learned_clauses % 512 == 0:
            self.engine.clause_db.enforce_cap(cap)
        conflict = self.engine.add_clause(clause)
        if conflict is not None:
            return conflict
        conflict = self._propagate()
        self.stats.propagations = (
            self.engine.propagation_count
            - self._counter_marks.get("propagations", 0)
        )
        return conflict

    # ------------------------------------------------------------------
    # Leaf certification
    # ------------------------------------------------------------------
    def _leaf_check(
        self, assumptions: Mapping[str, AssumptionValue], strict: bool = True
    ):
        """Certify SAT, or install a refutation clause and return None.

        With ``strict=False`` (early certification while don't-care
        variables remain free) a feasible box whose extracted model fails
        verification returns the ``_FALLBACK`` sentinel instead of being
        an error: the skipped (inactive) constraints were genuinely
        needed, so search resumes.  An *infeasible* box is a valid
        refutation either way, since the active constraints are a subset
        of the full problem.
        """
        self.stats.fme_checks += 1
        begin = time.perf_counter()
        try:
            leaf = check_solution_box(
                self.store,
                self.system,
                branch_budget=self.config.omega_branch_budget,
            )
        except ResourceLimitError as error:
            # The integer solver ran out of branch budget: neither SAT
            # nor UNSAT can be concluded from this box.
            return self._finish(Status.UNKNOWN, note=str(error))
        elapsed = time.perf_counter() - begin
        self.stats.fme_time += elapsed
        if self._prof is not None:
            self._prof.add("search/fme", elapsed)
        if self._trace is not None:
            self._trace.event(
                "leaf",
                dl=self.store.decision_level,
                mode="full" if strict else "early",
                feasible=leaf.feasible,
                components=leaf.components,
                constraints=leaf.constraints,
                seconds=elapsed,
            )
        if leaf.feasible:
            model = self._build_model(leaf.witness, assumptions, strict)
            if model is None:
                return _FALLBACK
            return self._finish(Status.SAT, model=model)

        self.stats.fme_conflicts += 1
        analysis = self._analyze_fme_refutation(leaf)
        if analysis is None:
            # The refutation depends on level-0 facts alone: UNSAT.
            return self._finish(Status.UNSAT)
        clause, backtrack_level = analysis.clause, analysis.backtrack_level
        self.stats.literals_minimized += analysis.literals_minimized
        clause.lbd = self._clause_lbd(clause)
        self.order.bump_clause(clause)
        self.order.decay()
        self.stats.conflicts += 1
        conflict = self._install_learned(clause, backtrack_level)
        final, _resolved = self._resolve_conflicts(conflict, bump_source=False)
        return final

    def _analyze_fme_refutation(self, leaf):
        """Conflict analysis of an arithmetic refutation (the [9] hybrid
        learning): the refuted component's variable bounds and the
        control assignments that activated its constraints are the
        antecedents; tracing them through the implication graph yields
        the learned clause.  Returns ``None`` when the refutation rests
        on level-0 facts alone (the instance is UNSAT)."""
        from repro.constraints.propagators import ComparatorProp

        antecedents = set()
        for var_index in leaf.failing_var_indices:
            event_id = self.store.latest_event[var_index]
            if event_id is not None:
                antecedents.add(event_id)
        for prop in leaf.failing_sources:
            control = prop.pred if isinstance(prop, ComparatorProp) else prop.sel
            event_id = self.store.latest_event[control.index]
            if event_id is not None:
                antecedents.add(event_id)
        conflict = Conflict(
            source="fme-refutation", antecedents=tuple(sorted(antecedents))
        )
        return analyze_conflict(
            conflict,
            self.store,
            hybrid_word_literals=self.config.hybrid_learned_clauses,
            minimize=self.config.clause_minimization,
        )

    def _build_model(
        self,
        witness: Dict[int, int],
        assumptions: Mapping[str, AssumptionValue],
        strict: bool = True,
    ) -> Optional[Dict[str, int]]:
        """Full net-valued model from the leaf witness, verified.

        Verification failure raises in strict mode (an internal
        inconsistency at a fully assigned leaf) and returns ``None`` in
        early-certification mode (the witness ignored a constraint that
        mattered after all).
        """
        input_values: Dict[str, int] = {}
        for net in self.circuit.inputs:
            var = self.system.var(net)
            input_values[net.name] = witness[var.index]
        model = simulate_combinational(self.circuit, input_values)
        if self.config.verify_models or not strict:
            for name, value in assumptions.items():
                interval = (
                    value
                    if isinstance(value, Interval)
                    else Interval.point(value)
                )
                actual = model[name]
                if actual not in interval:
                    if strict:
                        raise SolverError(
                            f"model verification failed: {name} = {actual} "
                            f"not in {interval}"
                        )
                    return None
        return model

    # ------------------------------------------------------------------
    # Budgets and results
    # ------------------------------------------------------------------
    def _out_of_budget(self) -> bool:
        if (
            self.config.max_conflicts is not None
            and self.stats.conflicts >= self.config.max_conflicts
        ):
            return True
        return (
            self._deadline is not None
            and time.perf_counter() > self._deadline
        )

    def _budget_note(self) -> str:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            return f"timeout after {self.config.timeout}s"
        return f"conflict budget {self.config.max_conflicts} exhausted"

    def _attribute_engine_phases(self) -> None:
        """Fold the engine's BCP/ICP clocks into the phase hierarchy.

        Propagation driven by predicate-learning probes ran before the
        search phase; the snapshot taken at the end of learning splits
        the engine totals between ``learn/*`` and ``search/propagate/*``.
        """
        prof = self._prof
        assert prof is not None
        if not self.persistent and (self._learn_bcp or self._learn_icp):
            # In persistent mode the marks are per-query engine-clock
            # snapshots, not learning time (sessions learn externally).
            prof.add("learn/bcp", self._learn_bcp)
            prof.add("learn/icp", self._learn_icp)
        prof.add(
            "search/propagate/bcp", self.engine.bcp_time - self._learn_bcp
        )
        prof.add(
            "search/propagate/icp", self.engine.icp_time - self._learn_icp
        )

    def _finish(
        self,
        status: Status,
        model: Optional[Dict[str, int]] = None,
        note: str = "",
    ) -> SolverResult:
        marks = self._counter_marks
        self.stats.propagations = (
            self.engine.propagation_count - marks.get("propagations", 0)
        )
        self.stats.propagator_wakeups = (
            self.engine.wakeup_count - marks.get("propagator_wakeups", 0)
        )
        self.stats.clause_visits = (
            self.engine.clause_db.clause_visits
            - marks.get("clause_visits", 0)
        )
        self.stats.watch_moves = (
            self.engine.clause_db.watch_moves - marks.get("watch_moves", 0)
        )
        # Decision-heap health counters (auto-registered extensions —
        # the metrics registry is the one place they need declaring).
        self.stats.heap_picks = self.order.picks - marks.get("heap_picks", 0)
        self.stats.heap_stale_pops = (
            self.order.stale_pops - marks.get("heap_stale_pops", 0)
        )
        clause_db = self.engine.clause_db
        self.stats.clauses_evicted = clause_db.clauses_evicted
        self.stats.clauses_demoted = clause_db.clauses_demoted
        core, mid, local = clause_db.tier_sizes()
        self.stats.clause_db_core = core
        self.stats.clause_db_mid = mid
        self.stats.clause_db_local = local
        self.stats.learned_lbd_mean = clause_db.mean_lbd()
        self.stats.narrowings = (
            self.store.narrowings - marks.get("narrowings", 0)
        )
        self.stats.props_filtered = (
            self.engine.props_filtered - marks.get("props_filtered", 0)
        )
        # Plan-cache counters are engine-lifetime totals, not per-query
        # deltas: they describe construction/extension work, not search.
        self.stats.kernel_plan_hits = self.engine.kernel_plan_hits
        self.stats.kernel_plan_misses = self.engine.kernel_plan_misses
        hits, misses = interval_cache_stats()
        delta_hits = hits - self._cache_mark[0]
        delta_total = delta_hits + misses - self._cache_mark[1]
        self.stats.interval_cache_hit_rate = (
            delta_hits / delta_total if delta_total else 0.0
        )
        return SolverResult(
            status=status, model=model, stats=self.stats, note=note
        )


def solve_circuit(
    circuit: Circuit,
    assumptions: Mapping[str, AssumptionValue],
    config: Optional[SolverConfig] = None,
    observation: Optional[Observation] = None,
) -> SolverResult:
    """One-shot convenience wrapper around :class:`HdpllSolver`."""
    return HdpllSolver(circuit, config, observation).solve(assumptions)
