"""Solver configuration.

The three solver configurations of the paper's Table 2 map to:

* HDPLL      — ``SolverConfig()`` (activity/fanout decision heuristic)
* HDPLL+S    — ``SolverConfig(structural_decisions=True)``
* HDPLL+S+P  — ``SolverConfig(structural_decisions=True,
                              predicate_learning=True)``

and Table 1's HDPLL+P is ``SolverConfig(predicate_learning=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class SolverConfig:
    """Knobs for :class:`repro.core.hdpll.HdpllSolver`."""

    #: Section 4: justification-driven decision strategy (+S).
    structural_decisions: bool = False
    #: Section 3: static predicate learning pre-processing (+P).
    predicate_learning: bool = False
    #: Cap on the number of learned relations.  ``None`` applies the
    #: paper's Section 5.2 rule: min(#predicate logic gates, 2000).
    learning_threshold: Optional[int] = None
    #: Keep lower-level word narrowings as word literals in learned
    #: clauses — the paper's hybrid clauses ("HDPLL can learn clauses
    #: where the literals can be Boolean or word variables", Section
    #: 2.4).  On by default; turning it off (Boolean-only learning) is
    #: the ablation that shows why hybrid learning matters.
    hybrid_learned_clauses: bool = True
    #: Wall-clock limit in seconds (None = no limit).
    timeout: Optional[float] = None
    #: Conflict budget (None = no limit).
    max_conflicts: Optional[int] = None
    #: Conflicts before the first restart; 0 disables restarts.
    restart_interval: int = 256
    #: Geometric growth factor of the restart interval.
    restart_multiplier: float = 1.5
    #: Restart schedule: ``"geometric"`` grows the interval by
    #: ``restart_multiplier`` after every restart; ``"luby"`` follows the
    #: Luby et al. sequence (1,1,2,1,1,2,4,...) scaled by
    #: ``restart_interval`` — the portfolio layer diversifies workers
    #: across both.
    restart_strategy: str = "geometric"
    #: Value tried first on a fresh decision variable.
    default_phase: int = 1
    #: Activity decay applied after each conflict (VSIDS-style).
    activity_decay: float = 0.95
    #: Verify SAT models against the concrete simulator (cheap insurance).
    verify_models: bool = True
    #: Branch budget for each Omega leaf call.
    omega_branch_budget: int = 200_000
    #: Strengthened mux backward rule in Ddeduce (ablation knob; the
    #: paper leaves select inference to the structural Decide).
    mux_select_implication: bool = False
    #: Export Section 4.4 phase hints from static learning (ablation
    #: knob; hurts counterexample search, see predlearn docs).
    learned_phase_hints: bool = False
    #: Reduce the learned-clause database (drop the worse half of the
    #: local tier) every this many learned clauses; 0 disables reduction.
    clause_db_reduce_interval: int = 4000
    #: Hard cap on disposable learned clauses kept by long-lived solver
    #: sessions; LBD/activity-tiered eviction (core and reason clauses
    #: are never evicted) kicks in above it.  0 disables the cap.
    clause_db_max_learned: int = 8000
    #: Glucose-style recursive clause minimization: drop learned-clause
    #: literals whose trail events are implied (through the implication
    #: graph) by the remaining literals and level-0 facts.
    clause_minimization: bool = True
    #: Learned clauses with LBD at or below this live in the *core* tier
    #: of the clause database and are never evicted ("glue" clauses).
    clause_db_core_lbd: int = 2
    #: LBD ceiling of the *mid* tier; above it a learned clause starts in
    #: the eviction-eligible *local* tier.
    clause_db_mid_lbd: int = 6
    #: Database reductions a mid-tier clause may sit through without its
    #: activity moving before it is demoted to the local tier.
    clause_db_mid_staleness: int = 2
    #: Propagation inner-loop implementation: ``"reference"`` (the
    #: oracle — per-propagator dict dispatch), ``"specialized"``
    #: (per-circuit unrolled kernel functions, no NumPy needed) or
    #: ``"vectorized"`` (specialized kernels plus NumPy batch sweeps
    #: that skip provably no-op propagator runs; falls back to
    #: ``"reference"`` with a logged warning when NumPy is absent).
    #: All three are bit-for-bit equivalent: same trail, same
    #: conflicts, same models, same counters.
    engine_impl: str = "reference"

    def with_overrides(self, **kwargs) -> "SolverConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


#: Paper configuration shorthands.
HDPLL_BASE = SolverConfig()
HDPLL_P = SolverConfig(predicate_learning=True)
HDPLL_S = SolverConfig(structural_decisions=True)
HDPLL_SP = SolverConfig(structural_decisions=True, predicate_learning=True)
