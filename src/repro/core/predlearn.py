"""Predicate-based static learning (Section 3 of the paper).

Pre-processing before search:

1. Level-order the circuit; extract the predicate logic controlling the
   datapath (cone-of-influence, :mod:`repro.rtl.predicates`).
2. Probe the controlling value of each candidate gate, lowest level
   first, with level-1 recursive learning extended by interval
   constraint propagation across the datapath.
3. Common implications become learned clauses — Boolean 2-literal
   relations like the paper's ``(b5 ∨ ¬b6)`` and hybrid clauses with
   word literals for common interval narrowings.
4. Learned relations are stored in the clause database, so later probes
   reuse them (exactly how Figure 2 learns ``(¬b8 ∨ b9)`` from the
   earlier ``b5``/``b6`` relations).
5. A threshold caps the number of relations (Section 3.1: "a threshold
   on the number of relations learned is used to control run-time").
6. Variables in learned relations get extra decision weight, and their
   preferred phase is set to the value satisfying the most relations
   (Section 4.4).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.intervals import Interval
from repro.constraints.clause import BoolLit, Clause, Literal, WordLit
from repro.constraints.compile import CompiledSystem
from repro.constraints.engine import PropagationEngine
from repro.constraints.store import Conflict, DomainStore
from repro.constraints.variable import Variable
from repro.core.decide import ActivityOrder
from repro.core.recursive import (
    ProbeDeadline,
    RecursiveLearner,
    justification_options,
)
from repro.rtl.predicates import extract_predicates

logger = logging.getLogger(__name__)

#: The paper's default cap (Section 5.2): min(#predicate gates, 2000).
DEFAULT_THRESHOLD_CAP = 2000

#: Conditional relations kept per probe.  A single branching probe can
#: imply hundreds of forward-chain narrowings; emitting them all starves
#: the global threshold before learning reaches the deeper time frames,
#: where the per-frame case-split facts (the potent ones for the UNSAT
#: families) are mined.  Boolean-Boolean relations are kept first — they
#: are the paper's Figure 2(b) shape — then the tightest word relations.
CONDITIONALS_PER_PROBE = 8


@dataclass
class LearnReport:
    """Outcome of the pre-processing pass."""

    relations_learned: int = 0
    probes: int = 0
    candidates: int = 0
    #: True when learning alone proved the circuit internally
    #: inconsistent (a probe value and its complement both impossible).
    root_conflict: bool = False
    #: The learned clauses, in learning order (for tests/diagnostics).
    clauses: List[Clause] = field(default_factory=list)
    #: net index -> clauses learned while probing that candidate.  A key
    #: is present only for candidates the loop actually processed, so
    #: probe caches can distinguish "probed, nothing learned" from
    #: "skipped by threshold/deadline".
    clauses_by_candidate: Dict[int, List[Clause]] = field(
        default_factory=dict
    )


def _clause_key(literals: Tuple[Literal, ...]) -> Tuple:
    return tuple(
        sorted(
            (
                lit.var.index,
                lit.positive,
                getattr(lit, "interval", None),
            )
            for lit in literals
        )
    )


def run_predicate_learning(
    system: CompiledSystem,
    store: DomainStore,
    engine: PropagationEngine,
    order: Optional[ActivityOrder] = None,
    threshold: Optional[int] = None,
    deadline: Optional[float] = None,
    phase_hints: bool = False,
    include_direct_relations: bool = False,
    tracer=None,
    candidates=None,
) -> LearnReport:
    """Run the Section 3 pre-processing pass on a live solver state.

    Must be called at decision level 0 before any assumptions; learned
    clauses are installed into ``engine``'s clause database.  A
    :class:`repro.obs.TraceEmitter` in ``tracer`` gets one
    ``learn_probe`` event per recursive-learning probe.  ``deadline`` is
    a ``time.perf_counter()`` instant (the solver's budget clock); it is
    enforced between candidates *and inside each probe's branch
    enumeration*, so a single pathological probe cannot overrun the
    solver's budget.

    ``candidates`` restricts probing to an explicit net list (the
    frame-extension path probes only the appended frame); by default the
    candidates are extracted from the whole circuit.
    """
    report = LearnReport()
    entry_level = store.decision_level
    if candidates is None:
        predicates = extract_predicates(system.circuit)
        candidates = predicates.learning_candidates
    report.candidates = len(candidates)
    if threshold is None:
        threshold = min(len(candidates), DEFAULT_THRESHOLD_CAP)

    learner = RecursiveLearner(system, store, engine, deadline=deadline)
    seen_clauses: Set[Tuple] = set()
    phase_votes: Dict[int, List[int]] = {}

    try:
        _probe_candidates(
            system,
            store,
            engine,
            learner,
            candidates,
            threshold,
            deadline,
            include_direct_relations,
            tracer,
            report,
            seen_clauses,
            phase_votes,
        )
    except ProbeDeadline:
        # A probe frame raised mid-recursion; levels it pushed are
        # still on the store.  Unwind to where learning began and keep
        # whatever was learned so far — partial learning is sound.
        store.backtrack_to(entry_level)
        engine.notify_backtrack()
        logger.debug(
            "predicate learning stopped at deadline after %d relations",
            report.relations_learned,
        )

    report.probes = learner.probes
    if report.root_conflict:
        return report
    logger.debug(
        "predicate learning: %d relations from %d probes "
        "(%d candidates, threshold %d)",
        report.relations_learned,
        report.probes,
        report.candidates,
        threshold,
    )
    if order is not None:
        # Phase hints (Section 4.4's "pick the value satisfying the most
        # learned relations") are off by default: on SAT instances they
        # bias the search towards typical circuit behaviour and away
        # from counterexamples — the ablation benchmark quantifies this.
        _export_weights(
            order, report.clauses, phase_votes if phase_hints else {}
        )
    return report


def _probe_candidates(
    system: CompiledSystem,
    store: DomainStore,
    engine: PropagationEngine,
    learner: RecursiveLearner,
    candidates,
    threshold: int,
    deadline: Optional[float],
    include_direct_relations: bool,
    tracer,
    report: LearnReport,
    seen_clauses: Set[Tuple],
    phase_votes: Dict[int, List[int]],
) -> None:
    """The candidate/probe loop body of :func:`run_predicate_learning`.

    Separated so the deadline can abort it from arbitrarily deep inside
    a probe (:class:`ProbeDeadline`) with one catch site.  Sets
    ``report.root_conflict`` and returns early when learning alone
    refutes the circuit.
    """
    for net in candidates:
        if report.relations_learned >= threshold:
            break
        if deadline is not None and time.perf_counter() > deadline:
            break
        var = system.var(net)
        node = net.driver
        assert node is not None
        clause_mark = len(report.clauses)
        probe_results: Dict[int, Optional[Dict[int, Interval]]] = {}
        for probe_value in (0, 1):
            if report.relations_learned >= threshold:
                break
            if store.is_assigned(var):
                break
            if deadline is not None and time.perf_counter() > deadline:
                return
            options = justification_options(system, node, probe_value)
            implications = learner.probe(var, probe_value, depth=1)
            probe_results[probe_value] = implications
            if tracer is not None:
                tracer.event(
                    "learn_probe",
                    dl=0,
                    var=net.name,
                    value=probe_value,
                    outcome=(
                        "impossible" if implications is None else "ok"
                    ),
                    implications=(
                        0 if implications is None else len(implications)
                    ),
                )
            if implications is None:
                # The probe value is impossible: learn it as a fact
                # (failed-literal detection / all options conflicting).
                conflict = _install(
                    engine,
                    report,
                    seen_clauses,
                    phase_votes,
                    (BoolLit(var, positive=(probe_value == 0)),),
                )
                if conflict is not None:
                    report.root_conflict = True
                    return
                continue
            if not options or len(options) < 2:
                # No branching justification: the per-value implications
                # are plain propagation consequences (search rediscovers
                # them, so they are skipped when learning feeds the
                # solver) — but consumers like predicate abstraction
                # want them spelled out as explicit relations.
                if not include_direct_relations:
                    continue
            probe_literal = BoolLit(var, positive=(probe_value == 0))
            ranked = sorted(
                implications.items(),
                key=lambda item: (
                    not store.variables[item[0]].is_bool,  # booleans first
                    item[1].size,                          # then tightest
                ),
            )
            emitted = 0
            for index, interval in ranked:
                if emitted >= CONDITIONALS_PER_PROBE:
                    break
                implied_var = store.variables[index]
                literal = _implication_literal(implied_var, interval)
                if literal is None or implied_var is var:
                    continue
                conflict = _install(
                    engine,
                    report,
                    seen_clauses,
                    phase_votes,
                    (probe_literal, literal),
                )
                if conflict is not None:
                    report.root_conflict = True
                    return
                emitted += 1
                if report.relations_learned >= threshold:
                    break

        # Case-split learning: {var = 0} and {var = 1} cover all cases,
        # so an implication common to both probes holds unconditionally
        # — a level-0 fact.  This is how learning captures facts like
        # "the guarded increment never leaves <0, 6>" that no single
        # Boolean relation can express.
        zero_result = probe_results.get(0)
        one_result = probe_results.get(1)
        if zero_result is not None and one_result is not None:
            for index in zero_result.keys() & one_result.keys():
                if report.relations_learned >= threshold:
                    break
                hull = zero_result[index].union_hull(one_result[index])
                implied_var = store.variables[index]
                if hull.contains_interval(store.domains[index]):
                    continue
                literal = _implication_literal(implied_var, hull)
                if literal is None:
                    continue
                conflict = _install(
                    engine, report, seen_clauses, phase_votes, (literal,)
                )
                if conflict is not None:
                    report.root_conflict = True
                    return

        # Candidate fully processed: attribute its clauses (early exits
        # above deliberately skip this, so partially probed candidates
        # are never cached as complete).
        report.clauses_by_candidate[net.index] = report.clauses[clause_mark:]


def _implication_literal(
    var: Variable, interval: Interval
) -> Optional[Literal]:
    """Literal expressing ``var ∈ interval``."""
    if var.is_bool:
        if not interval.is_point:
            return None
        return BoolLit(var, positive=bool(interval.lo))
    return WordLit(var, interval, positive=True)


def _install(
    engine: PropagationEngine,
    report: LearnReport,
    seen: Set[Tuple],
    phase_votes: Dict[int, List[int]],
    literals: Tuple[Literal, ...],
) -> Optional[Conflict]:
    """Add one learned relation; returns a conflict on level-0 refutation."""
    key = _clause_key(literals)
    if key in seen:
        return None
    seen.add(key)
    clause = Clause(
        literals=literals, learned=True, origin="predicate-learning"
    )
    conflict = engine.add_clause(clause)
    if conflict is None:
        conflict = engine.propagate()
    if conflict is not None:
        return conflict
    report.relations_learned += 1
    report.clauses.append(clause)
    # Phase votes (Section 4.4): count only *implied* literals — the
    # probe literal of a conditional relation is a hypothesis, not a
    # preferred value.  Unit facts vote with their single literal.
    implied = literals[1:] if len(literals) > 1 else literals
    for literal in implied:
        if isinstance(literal, BoolLit):
            votes = phase_votes.setdefault(literal.var.index, [0, 0])
            votes[1 if literal.positive else 0] += 1
    return None


def _export_weights(
    order: ActivityOrder,
    clauses: List[Clause],
    phase_votes: Dict[int, List[int]],
) -> None:
    """Feed learned-relation weights into the decision heuristic."""
    counts: Dict[int, int] = {}
    by_index: Dict[int, Variable] = {}
    for clause in clauses:
        for literal in clause.literals:
            counts[literal.var.index] = counts.get(literal.var.index, 0) + 1
            by_index[literal.var.index] = literal.var
    for index, count in counts.items():
        order.add_static_weight(by_index[index], float(count))
    for index, votes in phase_votes.items():
        if votes[0] != votes[1]:
            order.phase[index] = 1 if votes[1] > votes[0] else 0
