"""Time-frame expansion of sequential circuits.

Bounded model checking unrolls a sequential circuit into ``bound``
combinational copies: frame 0 starts from the registers' reset values,
and each register output at frame ``t > 0`` is the copy of its
next-state net from frame ``t - 1``.  Net ``n`` of frame ``t`` is named
``n@t``; every circuit output alias is re-exported per frame as
``alias@t``.

:class:`IncrementalUnroller` is the growth-capable form: it appends one
frame at a time to a single unrolled circuit and hands back the freshly
added nodes (in dependency order), which is what the incremental solving
layer feeds to :meth:`repro.core.session.SolverSession.extend`.  The
classic :func:`unroll` / :func:`unroll_free_initial` are thin wrappers
that build all frames up front.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CircuitError
from repro.rtl.circuit import Circuit, Net, Node
from repro.rtl.types import OpKind


def frame_name(base: str, frame: int) -> str:
    """Name of a net copy in one time frame."""
    return f"{base}@{frame}"


class IncrementalUnroller:
    """Grow a time-frame expansion one frame at a time.

    ``free_initial=True`` makes frame 0's register outputs fresh primary
    inputs instead of reset constants — the shape the inductive step
    (and the incremental base-case session, which asserts the reset
    values as retractable assumptions instead) wants.  After each
    :meth:`extend`, :attr:`unrolled` is a valid circuit covering frames
    ``0 .. frames - 1``.
    """

    def __init__(
        self,
        circuit: Circuit,
        free_initial: bool = False,
        name: Optional[str] = None,
    ):
        circuit.validate()
        self.source = circuit
        self.free_initial = free_initial
        self.unrolled = Circuit(name or f"{circuit.name}_inc")
        self.frames = 0
        self._order = circuit.topological_nodes()
        #: source net index -> its copy in the most recent frame.
        self._previous: Dict[int, Net] = {}

    def extend(self, frames: int = 1) -> List[Node]:
        """Append ``frames`` more time frames.

        Returns the nodes added to :attr:`unrolled`, in dependency
        order, so a live solver session can compile exactly the suffix.
        """
        if frames < 1:
            raise CircuitError(f"frames must be at least 1, got {frames}")
        node_mark = len(self.unrolled.nodes)
        for _ in range(frames):
            self._add_frame()
        self.unrolled.validate()
        return self.unrolled.nodes[node_mark:]

    def _add_frame(self) -> None:
        frame = self.frames
        unrolled = self.unrolled
        current_frame: Dict[int, Net] = {}
        for node in self._order:
            source_net = node.output
            name = frame_name(source_net.name, frame)
            if node.kind is OpKind.INPUT:
                copy = unrolled.add_input(name, source_net.width)
            elif node.kind is OpKind.CONST:
                copy = unrolled.add_const(
                    node.const_value or 0, source_net.width, name
                )
            elif node.kind is OpKind.REG:
                if frame == 0:
                    if self.free_initial:
                        copy = unrolled.add_input(name, source_net.width)
                    else:
                        copy = unrolled.add_const(
                            node.init_value or 0, source_net.width, name
                        )
                else:
                    # The register output at frame t is the previous
                    # frame's next-state net: reuse it directly (no BUF)
                    # and record the alias in the frame map.
                    copy = self._previous[node.operands[0].index]
            else:
                operands = [
                    current_frame[operand.index] for operand in node.operands
                ]
                attrs = {}
                if node.factor is not None:
                    attrs["factor"] = node.factor
                if node.shift_amount is not None:
                    attrs["shift_amount"] = node.shift_amount
                if node.extract_lo is not None:
                    attrs["extract_lo"] = node.extract_lo
                if node.extract_hi is not None:
                    attrs["extract_hi"] = node.extract_hi
                copy = unrolled.add_node(
                    node.kind,
                    operands,
                    width=source_net.width,
                    name=name if not unrolled.has_net(name) else None,
                    **attrs,
                )
            current_frame[source_net.index] = copy
        for alias, net in self.source.outputs.items():
            unrolled.mark_output(
                frame_name(alias, frame), current_frame[net.index]
            )
        self._previous = current_frame
        self.frames += 1


def unroll(circuit: Circuit, bound: int) -> Circuit:
    """Expand ``circuit`` into ``bound`` combinational time frames."""
    if bound < 1:
        raise CircuitError(f"bound must be at least 1, got {bound}")
    unroller = IncrementalUnroller(
        circuit, free_initial=False, name=f"{circuit.name}_bmc{bound}"
    )
    unroller.extend(bound)
    return unroller.unrolled


def unroll_free_initial(circuit: Circuit, frames: int) -> Circuit:
    """Time-frame expansion with *free* starting registers.

    Identical to :func:`unroll` except frame 0's register outputs become
    fresh primary inputs (named like the frame-0 register copies), which
    is what the inductive step needs.
    """
    if frames < 1:
        raise CircuitError(f"frames must be at least 1, got {frames}")
    unroller = IncrementalUnroller(
        circuit, free_initial=True, name=f"{circuit.name}_step{frames}"
    )
    unroller.extend(frames)
    return unroller.unrolled


def input_trace_from_model(
    circuit: Circuit, model: Dict[str, int], bound: int
) -> List[Dict[str, int]]:
    """Recover the per-frame input assignment from an unrolled model.

    Useful for replaying a BMC counterexample on the sequential
    simulator (done in the tests to validate every SAT answer).
    """
    trace: List[Dict[str, int]] = []
    for frame in range(bound):
        values = {
            net.name: model[frame_name(net.name, frame)]
            for net in circuit.inputs
        }
        trace.append(values)
    return trace
