"""Time-frame expansion of sequential circuits.

Bounded model checking unrolls a sequential circuit into ``bound``
combinational copies: frame 0 starts from the registers' reset values,
and each register output at frame ``t > 0`` is the copy of its
next-state net from frame ``t - 1``.  Net ``n`` of frame ``t`` is named
``n@t``; every circuit output alias is re-exported per frame as
``alias@t``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CircuitError
from repro.rtl.circuit import Circuit, Net, Node
from repro.rtl.types import OpKind


def frame_name(base: str, frame: int) -> str:
    """Name of a net copy in one time frame."""
    return f"{base}@{frame}"


def unroll(circuit: Circuit, bound: int) -> Circuit:
    """Expand ``circuit`` into ``bound`` combinational time frames."""
    if bound < 1:
        raise CircuitError(f"bound must be at least 1, got {bound}")
    circuit.validate()
    unrolled = Circuit(f"{circuit.name}_bmc{bound}")
    order = circuit.topological_nodes()
    previous_frame: Dict[int, Net] = {}

    for frame in range(bound):
        current_frame: Dict[int, Net] = {}
        for node in order:
            source_net = node.output
            name = frame_name(source_net.name, frame)
            if node.kind is OpKind.INPUT:
                copy = unrolled.add_input(name, source_net.width)
            elif node.kind is OpKind.CONST:
                copy = unrolled.add_const(
                    node.const_value or 0, source_net.width, name
                )
            elif node.kind is OpKind.REG:
                if frame == 0:
                    copy = unrolled.add_const(
                        node.init_value or 0, source_net.width, name
                    )
                else:
                    next_net = node.operands[0]
                    feed = previous_frame[next_net.index]
                    # A 1-bit register feeds through a BUF so the frame
                    # name exists; wider registers use ZEXT-free aliasing
                    # via an identity linear op is overkill — reuse the
                    # previous net directly and record the alias.
                    copy = feed
            else:
                operands = [
                    current_frame[operand.index] for operand in node.operands
                ]
                attrs = {}
                if node.factor is not None:
                    attrs["factor"] = node.factor
                if node.shift_amount is not None:
                    attrs["shift_amount"] = node.shift_amount
                if node.extract_lo is not None:
                    attrs["extract_lo"] = node.extract_lo
                if node.extract_hi is not None:
                    attrs["extract_hi"] = node.extract_hi
                copy = unrolled.add_node(
                    node.kind,
                    operands,
                    width=source_net.width,
                    name=name if not unrolled.has_net(name) else None,
                    **attrs,
                )
            current_frame[source_net.index] = copy
        for alias, net in circuit.outputs.items():
            unrolled.mark_output(
                frame_name(alias, frame), current_frame[net.index]
            )
        previous_frame = current_frame

    unrolled.validate()
    return unrolled


def input_trace_from_model(
    circuit: Circuit, model: Dict[str, int], bound: int
) -> List[Dict[str, int]]:
    """Recover the per-frame input assignment from an unrolled model.

    Useful for replaying a BMC counterexample on the sequential
    simulator (done in the tests to validate every SAT answer).
    """
    trace: List[Dict[str, int]] = []
    for frame in range(bound):
        values = {
            net.name: model[frame_name(net.name, frame)]
            for net in circuit.inputs
        }
        trace.append(values)
    return trace


def unroll_free_initial(circuit: Circuit, frames: int) -> Circuit:
    """Time-frame expansion with *free* starting registers.

    Identical to :func:`repro.bmc.unroll.unroll` except frame 0's
    register outputs become fresh primary inputs (named like the frame-0
    register copies), which is what the inductive step needs.
    """
    if frames < 1:
        raise CircuitError(f"frames must be at least 1, got {frames}")
    circuit.validate()
    unrolled = Circuit(f"{circuit.name}_step{frames}")
    order = circuit.topological_nodes()
    previous_frame: Dict[int, Net] = {}

    for frame in range(frames):
        current_frame: Dict[int, Net] = {}
        for node in order:
            source_net = node.output
            name = frame_name(source_net.name, frame)
            if node.kind is OpKind.INPUT:
                copy = unrolled.add_input(name, source_net.width)
            elif node.kind is OpKind.CONST:
                copy = unrolled.add_const(
                    node.const_value or 0, source_net.width, name
                )
            elif node.kind is OpKind.REG:
                if frame == 0:
                    copy = unrolled.add_input(name, source_net.width)
                else:
                    copy = previous_frame[node.operands[0].index]
            else:
                operands = [
                    current_frame[operand.index] for operand in node.operands
                ]
                attrs = {}
                if node.factor is not None:
                    attrs["factor"] = node.factor
                if node.shift_amount is not None:
                    attrs["shift_amount"] = node.shift_amount
                if node.extract_lo is not None:
                    attrs["extract_lo"] = node.extract_lo
                if node.extract_hi is not None:
                    attrs["extract_hi"] = node.extract_hi
                copy = unrolled.add_node(
                    node.kind,
                    operands,
                    width=source_net.width,
                    name=name if not unrolled.has_net(name) else None,
                    **attrs,
                )
            current_frame[source_net.index] = copy
        for alias, net in circuit.outputs.items():
            unrolled.mark_output(
                frame_name(alias, frame), current_frame[net.index]
            )
        previous_frame = current_frame

    unrolled.validate()
    return unrolled
