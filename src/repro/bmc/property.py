"""Safety properties and BMC instance construction.

A safety property names a 1-bit circuit output (the "ok" monitor) that
must be 1 in every cycle.  The BMC query at bound ``k`` asks whether some
input sequence drives the monitor to 0 **at frame k-1** (violation at
exactly the last frame) — the semantics under which the paper's
instances flip between SAT and UNSAT as the bound changes (b01_1 is SAT
at bound 10 and 50 but UNSAT at 20 and 100).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from repro.errors import CircuitError
from repro.intervals import Interval
from repro.rtl.circuit import Circuit
from repro.rtl.types import OpKind
from repro.bmc.unroll import frame_name, unroll


@dataclass(frozen=True)
class SafetyProperty:
    """An always-1 monitor signal on a sequential circuit."""

    name: str
    ok_signal: str
    description: str = ""


@dataclass
class BmcInstance:
    """A ready-to-solve combinational satisfiability problem."""

    name: str
    circuit: Circuit            # the unrolled, combinational circuit
    assumptions: Dict[str, Union[int, Interval]]
    bound: int
    sequential: Circuit         # the original sequential circuit
    prop: SafetyProperty

    @property
    def violation_net(self) -> str:
        return frame_name(self.prop.ok_signal, self.bound - 1)


def check_property(circuit: Circuit, prop: SafetyProperty) -> None:
    """Validate that ``prop`` names a 1-bit output of ``circuit``."""
    if prop.ok_signal not in circuit.outputs:
        raise CircuitError(
            f"property signal {prop.ok_signal!r} is not a circuit output"
        )
    if not circuit.outputs[prop.ok_signal].is_bool:
        raise CircuitError(
            f"property signal {prop.ok_signal!r} must be 1 bit"
        )


def initial_register_assumptions(circuit: Circuit) -> Dict[str, int]:
    """Reset values as frame-0 assumptions on a *free-initial* unrolling.

    An incremental base-case session unrolls with free starting
    registers and pins them to their reset values with retractable
    assumptions instead of constants — the free-initial system is
    time-invariant, which is what makes learned-clause shifting sound
    (see docs/performance.md).
    """
    return {
        frame_name(node.output.name, 0): node.init_value or 0
        for node in circuit.nodes
        if node.kind is OpKind.REG
    }


def make_bmc_instance(
    circuit: Circuit, prop: SafetyProperty, bound: int
) -> BmcInstance:
    """Unroll and constrain: "the monitor is 0 at frame bound-1"."""
    check_property(circuit, prop)
    unrolled = unroll(circuit, bound)
    target = frame_name(prop.ok_signal, bound - 1)
    return BmcInstance(
        name=f"{circuit.name}_{prop.name}({bound})",
        circuit=unrolled,
        assumptions={target: 0},
        bound=bound,
        sequential=circuit,
        prop=prop,
    )
