"""Incremental BMC: one solver session swept over increasing bounds.

One-shot BMC re-unrolls, re-compiles and re-learns from scratch at every
bound.  :class:`BmcSession` instead keeps a single
:class:`~repro.core.session.SolverSession` alive over a growing
free-initial unrolling:

* **Frame-extension compile** — each new bound appends one time frame's
  nodes to the live compiled system (no recompilation of frames
  ``0..t``).
* **Learned-clause shifting** — the free-initial unrolling is
  time-invariant, so the substitution σ mapping every ``n@f`` to
  ``n@f+1`` embeds the ``d``-frame constraint system into the
  ``d+1``-frame system.  Any clause implied by the first is therefore
  implied by the second under σ, and conflict clauses learned at the
  previous top frame are re-instantiated one frame later instead of
  being re-derived by search.  (With reset *constants* baked into frame
  0 this embedding does not exist — which is exactly why the base-case
  session asserts reset values as retractable assumptions instead.)
* **Probe-cone caching** — predicate-learning probes a candidate once
  per distinct *structural cone*, not once per frame: per-frame copies
  of the same predicate gate hash to the same frame-relative signature,
  and the cached probe clauses are transplanted by the same σ-shift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import SolverConfig
from repro.core.result import SolverResult, Status
from repro.core.session import SolverSession, frame_span, shift_name
from repro.obs import Observation
from repro.rtl.circuit import Circuit, Net
from repro.rtl.predicates import extract_predicates
from repro.rtl.types import OpKind
from repro.bmc.property import (
    SafetyProperty,
    check_property,
    initial_register_assumptions,
    make_bmc_instance,
)
from repro.bmc.unroll import IncrementalUnroller, frame_name


def _frame_of(name: str) -> Tuple[str, Optional[int]]:
    """Split ``n@3`` into ``("n", 3)``; frameless names get ``None``."""
    base, sep, tail = name.rpartition("@")
    if sep and tail.isdigit():
        return base, int(tail)
    return name, None


def cone_signature(net: Net, frame: int, memo: Dict[int, tuple]) -> tuple:
    """Frame-relative structural hash of the cone driving ``net``.

    Recurses through the in-frame combinational logic; any net tagged
    with an earlier frame becomes a symbolic boundary leaf ``("frame",
    delta, base)``.  Two candidates at different frames get equal
    signatures exactly when their cones are per-frame copies of the same
    logic referencing prior frames the same way — the condition under
    which cached probe clauses transplant soundly via a σ-shift.  Frame
    0 separates automatically: its register feeds are primary inputs
    (free-initial unrolling), not boundary references.
    """
    cached = memo.get(net.index)
    if cached is not None:
        return cached
    base, net_frame = _frame_of(net.name)
    if net_frame is not None and net_frame < frame:
        signature: tuple = ("frame", frame - net_frame, base)
    else:
        node = net.driver
        if node is None or node.kind is OpKind.INPUT:
            signature = ("input", base)
        elif node.kind is OpKind.CONST:
            signature = ("const", node.const_value or 0, net.width)
        else:
            signature = (
                node.kind.value,
                net.width,
                node.factor,
                node.shift_amount,
                node.extract_lo,
                node.extract_hi,
                tuple(
                    cone_signature(operand, frame, memo)
                    for operand in node.operands
                ),
            )
    memo[net.index] = signature
    return signature


@dataclass
class _CacheEntry:
    frame: int
    clauses: List


@dataclass
class ProbeCache:
    """Probe results keyed by frame-relative cone signature."""

    entries: Dict[tuple, _CacheEntry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, signature: tuple) -> Optional[_CacheEntry]:
        return self.entries.get(signature)

    def put(self, signature: tuple, frame: int, clauses: List) -> None:
        self.entries.setdefault(signature, _CacheEntry(frame, clauses))


#: Learned-clause origins that are pure search by-products — eligible
#: for forward shifting (predicate clauses travel via the probe cache).
_SHIFTABLE_ORIGINS = (
    "conflict",
    "fme-conflict",
    "j-conflict",
    "conflict-shifted",
)


class BmcSession:
    """A persistent solver over a growing free-initial unrolling.

    ``base=True`` additionally pins frame-0 registers to their reset
    values (as retractable assumptions) in every query — the base-case
    sequence.  ``base=False`` leaves them free — the inductive-step
    sequence.
    """

    def __init__(
        self,
        circuit: Circuit,
        prop: SafetyProperty,
        config: Optional[SolverConfig] = None,
        observation: Optional[Observation] = None,
        base: bool = True,
    ):
        check_property(circuit, prop)
        self.circuit = circuit
        self.prop = prop
        self.config = config or SolverConfig()
        self.base = base
        self.unroller = IncrementalUnroller(
            circuit,
            free_initial=True,
            name=f"{circuit.name}_{'base' if base else 'step'}",
        )
        self.unroller.extend(1)
        self.session = SolverSession(
            self.unroller.unrolled, self.config, observation
        )
        self.cache = ProbeCache()
        self._init_assumptions = (
            initial_register_assumptions(circuit) if base else {}
        )
        if self.config.predicate_learning:
            self._learn_frame(0)

    # ------------------------------------------------------------------
    # Frame growth
    # ------------------------------------------------------------------
    def extend_to(self, frames: int) -> None:
        """Grow the unrolling (and the live solver) to ``frames``."""
        while self.unroller.frames < frames:
            nodes = self.unroller.extend(1)
            self.session.extend(nodes)
            new_top = self.unroller.frames - 1
            self._shift_learned(new_top)
            if self.config.predicate_learning:
                self._learn_frame(new_top)

    def _shift_learned(self, new_top: int) -> None:
        """Re-instantiate previous-top conflict clauses at the new top.

        Shifting only clauses whose frame span peaks at ``new_top - 1``
        keeps the work O(clauses-at-top) per extension while still
        carrying every compound forward frame by frame (a clause shifted
        into ``new_top`` peaks there, so the next extension shifts the
        copy again).
        """
        shiftable = [
            clause
            for clause in self.session.learned_clauses()
            if clause.origin in _SHIFTABLE_ORIGINS
        ]
        batch = []
        for clause in shiftable:
            span = frame_span(lit.var.name for lit in clause.literals)
            if span is not None and span[1] == new_top - 1:
                batch.append(clause)
        installed = self.session.install_shifted(
            batch, lambda name: shift_name(name, 1)
        )
        trace = self.session._trace
        if trace is not None:
            trace.event(
                "clause-shift",
                dl=0,
                delta=1,
                shifted=len(batch),
                installed=installed,
            )

    def _learn_frame(self, frame: int) -> None:
        """Predicate-learn the new frame, probing each distinct cone once."""
        session = self.session
        if session.root_conflict:
            return
        candidates = [
            net
            for net in extract_predicates(
                self.unroller.unrolled
            ).learning_candidates
            if _frame_of(net.name)[1] == frame
        ]
        memo: Dict[int, tuple] = {}
        trace = session._trace
        misses: List[Tuple[Net, tuple]] = []
        for net in candidates:
            signature = cone_signature(net, frame, memo)
            entry = self.cache.get(signature)
            if entry is not None:
                self.cache.hits += 1
                session.probe_cache_hits += 1
                delta = frame - entry.frame
                session.install_shifted(
                    entry.clauses, lambda name: shift_name(name, delta)
                )
                if trace is not None:
                    trace.event(
                        "probe-cache",
                        dl=0,
                        outcome="hit",
                        candidate=net.name,
                        clauses=len(entry.clauses),
                    )
                if session.root_conflict:
                    return
            else:
                self.cache.misses += 1
                session.probe_cache_misses += 1
                misses.append((net, signature))
        if not misses:
            return
        report = session.learn([net for net, _ in misses])
        for net, signature in misses:
            clauses = report.clauses_by_candidate.get(net.index)
            if clauses is not None:
                self.cache.put(signature, frame, clauses)
            if trace is not None:
                trace.event(
                    "probe-cache",
                    dl=0,
                    outcome="miss",
                    candidate=net.name,
                    clauses=len(clauses or ()),
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def solve_bound(
        self, bound: int, timeout: Optional[float] = None
    ) -> SolverResult:
        """BMC query: can the monitor be 0 at frame ``bound - 1``?"""
        self.extend_to(bound)
        assumptions: Dict[str, int] = dict(self._init_assumptions)
        assumptions[frame_name(self.prop.ok_signal, bound - 1)] = 0
        return self.session.solve(assumptions, timeout=timeout)

    def solve_step(
        self, k: int, timeout: Optional[float] = None
    ) -> SolverResult:
        """Inductive-step query at depth ``k`` (over ``k + 1`` frames)."""
        self.extend_to(k + 1)
        assumptions: Dict[str, int] = {
            frame_name(self.prop.ok_signal, frame): 1 for frame in range(k)
        }
        assumptions[frame_name(self.prop.ok_signal, k)] = 0
        assumptions.update(self._init_assumptions)
        return self.session.solve(assumptions, timeout=timeout)


# ----------------------------------------------------------------------
# Bound sweeps (the bench harness' bmc profile engines)
# ----------------------------------------------------------------------
def bmc_sweep_session(
    circuit: Circuit,
    prop: SafetyProperty,
    bound: int,
    config: Optional[SolverConfig] = None,
    observation: Optional[Observation] = None,
    timeout: Optional[float] = None,
) -> List[SolverResult]:
    """Solve bounds ``1..bound`` incrementally with one session.

    ``timeout`` budgets the *whole sweep*; the sweep stops early when
    the budget runs out or a query returns UNKNOWN.
    """
    deadline = (
        time.perf_counter() + timeout if timeout is not None else None
    )
    session = BmcSession(
        circuit, prop, config, observation=observation, base=True
    )
    results: List[SolverResult] = []
    for b in range(1, bound + 1):
        remaining = None
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
        results.append(session.solve_bound(b, timeout=remaining))
        if results[-1].status is Status.UNKNOWN:
            break
    return results


def bmc_sweep_oneshot(
    circuit: Circuit,
    prop: SafetyProperty,
    bound: int,
    config: Optional[SolverConfig] = None,
    timeout: Optional[float] = None,
) -> List[SolverResult]:
    """Solve bounds ``1..bound`` from scratch (the baseline the bench
    profile's speedup gate compares the session sweep against).

    ``timeout`` budgets the whole sweep, like :func:`bmc_sweep_session`.
    """
    from repro.core.hdpll import solve_circuit

    config = config or SolverConfig()
    deadline = (
        time.perf_counter() + timeout if timeout is not None else None
    )
    results: List[SolverResult] = []
    for b in range(1, bound + 1):
        call_config = config
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            call_config = config.with_overrides(timeout=remaining)
        instance = make_bmc_instance(circuit, prop, b)
        results.append(
            solve_circuit(instance.circuit, instance.assumptions, call_config)
        )
        if results[-1].status is Status.UNKNOWN:
            break
    return results
