"""k-induction: unbounded safety proofs on top of the BMC engine.

BMC at bound k only *refutes* a property (or proves it up to depth k).
k-induction turns the same machinery into an unbounded prover:

* **Base case** — no violation in the first k frames (k BMC queries, or
  equivalently one query per depth).
* **Inductive step** — a time-frame window of k+1 states with *free*
  (unconstrained) starting registers, assuming the monitor holds in the
  first k frames, cannot violate it in frame k+1.  If this is UNSAT the
  property holds at every depth.

The step circuit is built like :func:`repro.bmc.unroll.unroll` except
that frame 0's registers become fresh primary inputs instead of reset
constants.  Increasing k strengthens the induction hypothesis, so the
engine iterates k = 1, 2, ... up to a limit.

This is the natural "unbounded" companion of the paper's evaluation:
the UNSAT BMC families (b02_1, b13_1...) are invariants, and k-induction
proves them once instead of once per bound.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import SolverConfig
from repro.core.hdpll import solve_circuit
from repro.core.result import Status
from repro.rtl.circuit import Circuit
from repro.bmc.property import SafetyProperty, make_bmc_instance
from repro.bmc.unroll import frame_name, unroll_free_initial


class InductionStatus(enum.Enum):
    """Outcome of a k-induction run."""

    PROVED = "proved"          # property holds at every depth
    VIOLATED = "violated"      # base case found a counterexample
    UNDECIDED = "undecided"    # k limit or budget exhausted


@dataclass
class InductionResult:
    status: InductionStatus
    #: Induction depth that closed the proof (PROVED) or the depth of
    #: the counterexample (VIOLATED).
    k: int = 0
    #: Counterexample model over the unrolled nets (VIOLATED only).
    counterexample: Optional[Dict[str, int]] = None
    note: str = ""
    #: Per-depth timings for diagnostics.
    base_seconds: List[float] = field(default_factory=list)
    step_seconds: List[float] = field(default_factory=list)




def prove_by_induction(
    circuit: Circuit,
    prop: SafetyProperty,
    max_k: int = 10,
    config: Optional[SolverConfig] = None,
    timeout: Optional[float] = None,
) -> InductionResult:
    """Attempt an unbounded proof of a safety property by k-induction."""
    config = config or SolverConfig()
    deadline = time.monotonic() + timeout if timeout is not None else None

    def remaining() -> Optional[float]:
        if deadline is None:
            return config.timeout
        return max(0.0, deadline - time.monotonic())

    result = InductionResult(status=InductionStatus.UNDECIDED)
    for k in range(1, max_k + 1):
        if deadline is not None and time.monotonic() > deadline:
            result.note = f"timeout before depth {k}"
            return result

        # Base case: no violation at depth exactly k.
        base_instance = make_bmc_instance(circuit, prop, k)
        start = time.monotonic()
        base = solve_circuit(
            base_instance.circuit,
            base_instance.assumptions,
            config.with_overrides(timeout=remaining()),
        )
        result.base_seconds.append(time.monotonic() - start)
        if base.status is Status.UNKNOWN:
            result.note = f"base case budget exhausted at depth {k}"
            return result
        if base.is_sat:
            result.status = InductionStatus.VIOLATED
            result.k = k
            result.counterexample = base.model
            return result

        # Inductive step: ok in frames 0..k-1 (free start) forces ok in
        # frame k.
        step_circuit = unroll_free_initial(circuit, k + 1)
        assumptions: Dict[str, int] = {
            frame_name(prop.ok_signal, frame): 1 for frame in range(k)
        }
        assumptions[frame_name(prop.ok_signal, k)] = 0
        start = time.monotonic()
        step = solve_circuit(
            step_circuit,
            assumptions,
            config.with_overrides(timeout=remaining()),
        )
        result.step_seconds.append(time.monotonic() - start)
        if step.status is Status.UNKNOWN:
            result.note = f"inductive step budget exhausted at depth {k}"
            return result
        if step.is_unsat:
            result.status = InductionStatus.PROVED
            result.k = k
            return result
    result.note = f"not inductive up to k = {max_k}"
    return result
