"""k-induction: unbounded safety proofs on top of the BMC engine.

BMC at bound k only *refutes* a property (or proves it up to depth k).
k-induction turns the same machinery into an unbounded prover:

* **Base case** — no violation in the first k frames (k BMC queries, or
  equivalently one query per depth).
* **Inductive step** — a time-frame window of k+1 states with *free*
  (unconstrained) starting registers, assuming the monitor holds in the
  first k frames, cannot violate it in frame k+1.  If this is UNSAT the
  property holds at every depth.

Both query sequences run on persistent incremental sessions
(:class:`repro.bmc.session.BmcSession`): one free-initial unrolling with
reset values asserted as retractable assumptions serves every base
depth, and a second fully-free unrolling serves every inductive step —
each new depth appends one compiled frame and inherits all learned
clauses (shifted forward in time) instead of restarting from scratch.

With ``jobs >= 2`` (the CLI's ``-j``), each depth's base and step
queries run *concurrently* on the crash-isolated worker pool as one-shot
solves; a SAT base case is the only sound early decision (it settles the
whole run as VIOLATED), so it kills the in-flight step worker.

This is the natural "unbounded" companion of the paper's evaluation:
the UNSAT BMC families (b02_1, b13_1...) are invariants, and k-induction
proves them once instead of once per bound.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import SolverConfig
from repro.core.hdpll import solve_circuit
from repro.core.result import SolverResult, Status
from repro.rtl.circuit import Circuit
from repro.bmc.property import SafetyProperty, make_bmc_instance
from repro.bmc.session import BmcSession
from repro.bmc.unroll import frame_name, unroll_free_initial


class InductionStatus(enum.Enum):
    """Outcome of a k-induction run."""

    PROVED = "proved"          # property holds at every depth
    VIOLATED = "violated"      # base case found a counterexample
    UNDECIDED = "undecided"    # k limit or budget exhausted


@dataclass
class InductionResult:
    status: InductionStatus
    #: Induction depth that closed the proof (PROVED) or the depth of
    #: the counterexample (VIOLATED).
    k: int = 0
    #: Counterexample model over the unrolled nets (VIOLATED only).
    counterexample: Optional[Dict[str, int]] = None
    note: str = ""
    #: Per-depth timings for diagnostics.
    base_seconds: List[float] = field(default_factory=list)
    step_seconds: List[float] = field(default_factory=list)
    #: Per-depth solver statistics: one dict per attempted depth with
    #: ``k``, base/step ``decisions``/``conflicts`` and the session's
    #: probe-cache hit rate at that depth.
    depth_stats: List[Dict[str, object]] = field(default_factory=list)


def _depth_entry(k: int) -> Dict[str, object]:
    return {
        "k": k,
        "base_decisions": 0,
        "base_conflicts": 0,
        "step_decisions": 0,
        "step_conflicts": 0,
        "probe_cache_hit_rate": 0.0,
    }


def _fill_depth(entry: Dict[str, object], kind: str, result) -> None:
    entry[f"{kind}_decisions"] = result.stats.decisions
    entry[f"{kind}_conflicts"] = result.stats.conflicts
    entry["probe_cache_hit_rate"] = max(
        float(entry["probe_cache_hit_rate"]),  # type: ignore[arg-type]
        result.stats.probe_cache_hit_rate,
    )


def prove_by_induction(
    circuit: Circuit,
    prop: SafetyProperty,
    max_k: int = 10,
    config: Optional[SolverConfig] = None,
    timeout: Optional[float] = None,
    jobs: int = 1,
    case: Optional[str] = None,
) -> InductionResult:
    """Attempt an unbounded proof of a safety property by k-induction.

    ``jobs >= 2`` with a registry ``case`` name runs each depth's base
    and step queries concurrently on the worker pool (one-shot solves,
    first-conclusive-finisher decides); otherwise the incremental
    session path runs them sequentially.
    """
    config = config or SolverConfig()
    if jobs >= 2 and case is not None:
        return _prove_parallel(
            case, max_k=max_k, config=config, timeout=timeout, jobs=jobs
        )
    deadline = time.monotonic() + timeout if timeout is not None else None

    def remaining() -> Optional[float]:
        if deadline is None:
            return config.timeout
        return max(0.0, deadline - time.monotonic())

    result = InductionResult(status=InductionStatus.UNDECIDED)
    base_session = BmcSession(circuit, prop, config, base=True)
    step_session = BmcSession(circuit, prop, config, base=False)
    for k in range(1, max_k + 1):
        if deadline is not None and time.monotonic() > deadline:
            result.note = f"timeout before depth {k}"
            return result
        depth = _depth_entry(k)
        result.depth_stats.append(depth)

        # Base case: no violation at depth exactly k.
        start = time.monotonic()
        base = base_session.solve_bound(k, timeout=remaining())
        result.base_seconds.append(time.monotonic() - start)
        _fill_depth(depth, "base", base)
        if base.status is Status.UNKNOWN:
            result.note = f"base case budget exhausted at depth {k}"
            return result
        if base.is_sat:
            result.status = InductionStatus.VIOLATED
            result.k = k
            result.counterexample = base.model
            return result

        # Inductive step: ok in frames 0..k-1 (free start) forces ok in
        # frame k.
        start = time.monotonic()
        step = step_session.solve_step(k, timeout=remaining())
        result.step_seconds.append(time.monotonic() - start)
        _fill_depth(depth, "step", step)
        if step.status is Status.UNKNOWN:
            result.note = f"inductive step budget exhausted at depth {k}"
            return result
        if step.is_unsat:
            result.status = InductionStatus.PROVED
            result.k = k
            return result
    result.note = f"not inductive up to k = {max_k}"
    return result


# ----------------------------------------------------------------------
# Parallel per-depth path (CLI -j >= 2)
# ----------------------------------------------------------------------
def _depth_query_worker(
    case: str,
    kind: str,
    k: int,
    timeout: Optional[float],
    structural: bool,
    predicate: bool,
):
    """One-shot base or step query at depth ``k`` (pool worker body).

    Rebuilds the circuit from the ITC99 registry by ``case`` name so the
    task description stays picklable and tiny (spawn workers re-import
    this module).
    """
    from repro.itc99 import CIRCUITS, circuit as get_circuit

    circuit_name, _, property_name = case.partition("_")
    sequential = get_circuit(circuit_name)
    prop = CIRCUITS[circuit_name][1][property_name]
    config = SolverConfig(
        structural_decisions=structural,
        predicate_learning=predicate,
        timeout=timeout,
    )
    if kind == "base":
        instance = make_bmc_instance(sequential, prop, k)
        result: SolverResult = solve_circuit(
            instance.circuit, instance.assumptions, config
        )
    else:
        step_circuit = unroll_free_initial(sequential, k + 1)
        assumptions: Dict[str, int] = {
            frame_name(prop.ok_signal, frame): 1 for frame in range(k)
        }
        assumptions[frame_name(prop.ok_signal, k)] = 0
        result = solve_circuit(step_circuit, assumptions, config)
    return (
        kind,
        result.status.value,
        result.model,
        {
            "decisions": result.stats.decisions,
            "conflicts": result.stats.conflicts,
        },
    )


def _prove_parallel(
    case: str,
    max_k: int,
    config: SolverConfig,
    timeout: Optional[float],
    jobs: int,
) -> InductionResult:
    """Per-depth base/step queries racing on the worker pool.

    Only a SAT base case is a sound early decision (VIOLATED ends the
    whole run); a step verdict always waits for its depth's base result,
    so the stop predicate fires on base-SAT alone.
    """
    from repro.harness.parallel import Task, run_tasks

    deadline = time.monotonic() + timeout if timeout is not None else None
    result = InductionResult(status=InductionStatus.UNDECIDED)
    for k in range(1, max_k + 1):
        if deadline is not None and time.monotonic() > deadline:
            result.note = f"timeout before depth {k}"
            return result
        budget = (
            max(0.0, deadline - time.monotonic())
            if deadline is not None
            else config.timeout
        )
        tasks = [
            Task(
                fn=_depth_query_worker,
                args=(
                    case,
                    kind,
                    k,
                    budget,
                    config.structural_decisions,
                    config.predicate_learning,
                ),
                timeout=budget,
                label=f"{case} {kind} k={k}",
            )
            for kind in ("base", "step")
        ]
        start = time.monotonic()
        outcomes = run_tasks(
            tasks,
            jobs=min(jobs, 2),
            stop_when=lambda outcome: (
                outcome.value[0] == "base" and outcome.value[1] == "sat"
            ),
        )
        elapsed = time.monotonic() - start
        result.base_seconds.append(elapsed)
        result.step_seconds.append(elapsed)
        depth = _depth_entry(k)
        result.depth_stats.append(depth)
        by_kind = {
            outcome.value[0]: outcome
            for outcome in outcomes
            if outcome.ok
        }

        base = by_kind.get("base")
        if base is None:
            failed = outcomes[0]
            result.note = (
                f"base query failed at depth {k}: {failed.error}"
            )
            return result
        _kind, base_status, base_model, base_stats = base.value
        depth["base_decisions"] = base_stats["decisions"]
        depth["base_conflicts"] = base_stats["conflicts"]
        if base_status == "sat":
            result.status = InductionStatus.VIOLATED
            result.k = k
            result.counterexample = base_model
            return result
        if base_status == "unknown":
            result.note = f"base case budget exhausted at depth {k}"
            return result

        step = by_kind.get("step")
        if step is None:
            result.note = (
                f"step query failed at depth {k}: {outcomes[1].error}"
            )
            return result
        _kind, step_status, _model, step_stats = step.value
        depth["step_decisions"] = step_stats["decisions"]
        depth["step_conflicts"] = step_stats["conflicts"]
        if step_status == "unknown":
            result.note = f"inductive step budget exhausted at depth {k}"
            return result
        if step_status == "unsat":
            result.status = InductionStatus.PROVED
            result.k = k
            return result
    result.note = f"not inductive up to k = {max_k}"
    return result
