"""Bounded model checking: time-frame expansion, safety properties and
k-induction for unbounded proofs."""

from repro.bmc.induction import (
    InductionResult,
    InductionStatus,
    prove_by_induction,
)
from repro.bmc.property import BmcInstance, SafetyProperty, make_bmc_instance
from repro.bmc.unroll import (
    frame_name,
    input_trace_from_model,
    unroll,
    unroll_free_initial,
)

__all__ = [
    "BmcInstance",
    "InductionResult",
    "InductionStatus",
    "SafetyProperty",
    "frame_name",
    "input_trace_from_model",
    "make_bmc_instance",
    "prove_by_induction",
    "unroll",
    "unroll_free_initial",
]
