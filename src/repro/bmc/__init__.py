"""Bounded model checking: time-frame expansion, safety properties,
incremental BMC sessions and k-induction for unbounded proofs."""

from repro.bmc.induction import (
    InductionResult,
    InductionStatus,
    prove_by_induction,
)
from repro.bmc.property import (
    BmcInstance,
    SafetyProperty,
    check_property,
    initial_register_assumptions,
    make_bmc_instance,
)
from repro.bmc.session import (
    BmcSession,
    ProbeCache,
    bmc_sweep_oneshot,
    bmc_sweep_session,
    cone_signature,
)
from repro.bmc.unroll import (
    IncrementalUnroller,
    frame_name,
    input_trace_from_model,
    unroll,
    unroll_free_initial,
)

__all__ = [
    "BmcInstance",
    "BmcSession",
    "IncrementalUnroller",
    "InductionResult",
    "InductionStatus",
    "ProbeCache",
    "SafetyProperty",
    "bmc_sweep_oneshot",
    "bmc_sweep_session",
    "check_property",
    "cone_signature",
    "frame_name",
    "initial_register_assumptions",
    "input_trace_from_model",
    "make_bmc_instance",
    "prove_by_induction",
    "unroll",
    "unroll_free_initial",
]
