"""Constraint propagators: hybrid consistency over the RTL operator set.

Each propagator implements bounds-consistency narrowing for one circuit
node, in both directions (forward from operands to output, and backward
from output to operands — the interval analogue of ATPG implication).

Three propagator families cover the whole operator set:

* :class:`LinearEqProp` — ``sum(coeff_i * var_i) == constant``.  All the
  "non-justifiable" datapath operators of Definition 4.1 (add, sub,
  multiplication by constant, shifts, concat, extract, zext) compile to
  one linear equality with auxiliary carry/remainder variables, exactly
  the auxiliary-variable modelling of Section 2.1.
* :class:`MuxProp` — the ITE operator, the justifiable word operator of
  Definition 4.1 rule 2.
* :class:`ComparatorProp` — the predicates ``{==, !=, <, <=, >, >=}``
  with bidirectional propagation (intervals imply the predicate value;
  the predicate value narrows intervals, Equations 2/3).
* :class:`BoolGateProp` — atomic Boolean operators (rule 1), with the
  usual controlling/non-controlling value implications.

These classes are the *reference* propagation core and the behavioural
oracle.  The accelerated cores (``SolverConfig.engine_impl`` of
``"specialized"`` / ``"vectorized"``) run exec()-generated kernels from
:mod:`repro.constraints.compile` that unroll each ``propagate`` method
below into straight-line array code — any semantic change here (bounds
maths, event kinds, antecedent order, counter bumps) must be mirrored
in the matching kernel template, and the differential sweep in
``tests/constraints/test_differential.py`` holds the two bit-for-bit
equal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SolverError
from repro.intervals import Interval, narrow_eq, narrow_le, narrow_lt, narrow_ne
from repro.constraints.store import (
    EVENT_ANY,
    EVENT_BOOL,
    EVENT_FIXED,
    EVENT_LOWER,
    EVENT_UPPER,
    Conflict,
    DomainStore,
    Event,
)
from repro.constraints.variable import Variable
from repro.rtl.types import OpKind

#: Wake mask for propagators that react to any bound movement.
BOUNDS_MASK = EVENT_LOWER | EVENT_UPPER | EVENT_FIXED | EVENT_BOOL
#: Wake mask for variables that only matter once fixed to a point
#: (Boolean controls: gate pins, mux selects, comparator outputs).
FIXED_MASK = EVENT_FIXED | EVENT_BOOL


class Propagator:
    """Base class: a constraint over a fixed tuple of variables."""

    #: Subclasses fill this with every variable the constraint mentions.
    variables: Tuple[Variable, ...] = ()
    #: Backing circuit node index, when compiled from a circuit.
    node_index: Optional[int] = None
    #: Worklist tier: 0 = cheap Boolean propagation (drained first),
    #: 1 = interval constraint propagation.
    priority: int = 1
    #: True when ``propagate`` leaves the constraint at a local fixpoint
    #: on return, allowing the engine to skip re-waking the propagator on
    #: events it produced itself.  Every built-in family qualifies; a
    #: subclass that narrows lazily must set this to False.
    idempotent: bool = True

    def wake_mask(self, var: Variable) -> int:
        """EVENT_* bits that should wake this propagator for ``var``."""
        return EVENT_ANY

    def propagate(self, store: DomainStore) -> Optional[Conflict]:
        """Narrow variable domains; return a conflict or ``None``."""
        raise NotImplementedError

    def _narrow(
        self, store: DomainStore, var: Variable, interval: Interval
    ) -> Optional[Conflict]:
        """Helper: narrow one variable, reporting this propagator as reason."""
        outcome = store.narrow(var, interval, self, self.variables)
        if isinstance(outcome, Conflict):
            return outcome
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(v.name for v in self.variables)
        return f"{type(self).__name__}({names})"


class LinearEqProp(Propagator):
    """``sum(coeffs[i] * variables[i]) == constant`` over integers."""

    def __init__(
        self,
        coeffs: Sequence[int],
        variables: Sequence[Variable],
        constant: int,
        label: str = "linear",
    ):
        if len(coeffs) != len(variables):
            raise SolverError("coefficient/variable length mismatch")
        if any(c == 0 for c in coeffs):
            raise SolverError("zero coefficient in linear constraint")
        # Merge duplicate variables (e.g. sub(a, a)): coefficients add,
        # and fully cancelled terms drop out.
        merged: "dict[Variable, int]" = {}
        for coeff, var in zip(coeffs, variables):
            merged[var] = merged.get(var, 0) + coeff
        merged = {var: c for var, c in merged.items() if c != 0}
        self.coeffs = tuple(merged.values())
        self.variables = tuple(merged.keys())
        self.constant = constant
        self.label = label

    def propagate(self, store: DomainStore) -> Optional[Conflict]:
        variables = self.variables
        if not variables:
            if self.constant != 0:
                return Conflict(source=self, antecedents=())
            return None
        # Iterate to a local fixpoint: each pass narrows each variable
        # against the residual interval of the others.  Term bounds are
        # tracked as plain ints against the store's flat lo/hi arrays —
        # no interval objects are built unless a domain actually shrinks.
        coeffs = self.coeffs
        constant = self.constant
        lo_arr = store.lo
        hi_arr = store.hi
        count = len(coeffs)
        term_lo = [0] * count
        term_hi = [0] * count
        total_lo = 0
        total_hi = 0
        for position in range(count):
            coeff = coeffs[position]
            index = variables[position].index
            if coeff >= 0:
                t_lo = coeff * lo_arr[index]
                t_hi = coeff * hi_arr[index]
            else:
                t_lo = coeff * hi_arr[index]
                t_hi = coeff * lo_arr[index]
            term_lo[position] = t_lo
            term_hi[position] = t_hi
            total_lo += t_lo
            total_hi += t_hi
        changed = True
        while changed:
            changed = False
            if not total_lo <= constant <= total_hi:
                return Conflict(
                    source=self,
                    antecedents=self._antecedents(store),
                    var=variables[0],
                )
            for position in range(count):
                coeff = coeffs[position]
                var = variables[position]
                t_lo = term_lo[position]
                t_hi = term_hi[position]
                # coeff * var must land in [constant - others_hi,
                #                           constant - others_lo].
                residual_lo = constant - (total_hi - t_hi)
                residual_hi = constant - (total_lo - t_lo)
                if coeff > 0:
                    var_lo = -((-residual_lo) // coeff)   # ceil
                    var_hi = residual_hi // coeff          # floor
                else:
                    var_lo = -((-residual_hi) // coeff)
                    var_hi = residual_lo // coeff
                index = var.index
                if var_lo <= lo_arr[index] and var_hi >= hi_arr[index]:
                    continue
                if var_lo > var_hi:
                    return Conflict(
                        source=self,
                        antecedents=self._antecedents(store),
                        var=var,
                    )
                outcome = store.narrow_bounds(
                    var, var_lo, var_hi, self, variables
                )
                if isinstance(outcome, Conflict):
                    return outcome
                if isinstance(outcome, Event):
                    changed = True
                    new_lo = lo_arr[index]
                    new_hi = hi_arr[index]
                    if coeff >= 0:
                        n_lo = coeff * new_lo
                        n_hi = coeff * new_hi
                    else:
                        n_lo = coeff * new_hi
                        n_hi = coeff * new_lo
                    total_lo += n_lo - t_lo
                    total_hi += n_hi - t_hi
                    term_lo[position] = n_lo
                    term_hi[position] = n_hi
        return None

    def _antecedents(self, store: DomainStore) -> Tuple[int, ...]:
        return tuple(
            event_id
            for var in self.variables
            if (event_id := store.latest_event[var.index]) is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(
            f"{c}*{v.name}" for c, v in zip(self.coeffs, self.variables)
        )
        return f"LinearEq[{self.label}]({terms} == {self.constant})"


class MuxProp(Propagator):
    """``out == (sel ? then_value : else_value)``.

    ``imply_select`` controls the backward rule "output disjoint from one
    branch implies the select".  The paper's HDPLL leaves that inference
    to the *structural decision strategy* (Figure 4 presents ``b1 = 0``
    as a decision, not an implication), so it is off by default; turning
    it on strengthens ``Ddeduce`` and is exposed as an ablation.
    Conflict detection (both branches disjoint) is always on.
    """

    def __init__(
        self,
        out: Variable,
        sel: Variable,
        then_var: Variable,
        else_var: Variable,
        imply_select: bool = False,
    ):
        self.out = out
        self.sel = sel
        self.then_var = then_var
        self.else_var = else_var
        self.imply_select = imply_select
        self.variables = (out, sel, then_var, else_var)

    def wake_mask(self, var: Variable) -> int:
        # The select only matters once it is decided to 0/1; the data
        # pins and the output matter on any bound movement.
        return FIXED_MASK if var is self.sel else BOUNDS_MASK

    def propagate(self, store: DomainStore) -> Optional[Conflict]:
        sel_value = store.bool_value(self.sel)
        if sel_value is not None:
            chosen = self.then_var if sel_value else self.else_var
            narrowed = narrow_eq(store.domain(self.out), store.domain(chosen))
            if narrowed is None:
                return Conflict(
                    source=self,
                    antecedents=self._latest(store),
                    var=self.out,
                )
            out_interval, chosen_interval = narrowed
            conflict = self._narrow(store, self.out, out_interval)
            if conflict is not None:
                return conflict
            return self._narrow(store, chosen, chosen_interval)

        out_domain = store.domain(self.out)
        then_domain = store.domain(self.then_var)
        else_domain = store.domain(self.else_var)
        # Forward: the output lies in the hull of the two data inputs.
        conflict = self._narrow(
            store, self.out, then_domain.union_hull(else_domain)
        )
        if conflict is not None:
            return conflict
        # Backward on the select: if the output is incompatible with one
        # branch, the other must be selected.
        out_domain = store.domain(self.out)
        then_possible = out_domain.intersects(then_domain)
        else_possible = out_domain.intersects(else_domain)
        if not then_possible and not else_possible:
            return Conflict(
                source=self, antecedents=self._latest(store), var=self.out
            )
        if not self.imply_select:
            return None
        if not then_possible:
            outcome = store.assign_bool(self.sel, 0, self, self.variables)
            if isinstance(outcome, Conflict):
                return outcome
            return self.propagate(store)
        if not else_possible:
            outcome = store.assign_bool(self.sel, 1, self, self.variables)
            if isinstance(outcome, Conflict):
                return outcome
            return self.propagate(store)
        return None

    def _latest(self, store: DomainStore) -> Tuple[int, ...]:
        return tuple(
            event_id
            for var in self.variables
            if (event_id := store.latest_event[var.index]) is not None
        )


class ComparatorProp(Propagator):
    """``pred == (x REL y)`` for REL in {==, !=, <, <=, >, >=}.

    GT/GE are normalised to LT/LE with swapped operands at construction,
    so propagation only handles EQ, NE, LT and LE.
    """

    _NEGATION = {
        OpKind.EQ: OpKind.NE,
        OpKind.NE: OpKind.EQ,
        # not(x < y) == (y <= x); handled by swapping in _narrow_relation.
    }

    def __init__(self, pred: Variable, kind: OpKind, x: Variable, y: Variable):
        if kind is OpKind.GT:
            kind, x, y = OpKind.LT, y, x
        elif kind is OpKind.GE:
            kind, x, y = OpKind.LE, y, x
        if kind not in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE):
            raise SolverError(f"not a comparator kind: {kind}")
        self.pred = pred
        self.kind = kind
        self.x = x
        self.y = y
        self.variables = (pred, x, y)
        # A degenerate comparator (x aliased to y, e.g. ``a != a`` from a
        # randomly generated circuit) narrows the same variable twice per
        # pass against stale bounds, so one pass is not a local fixpoint:
        # the engine must re-wake it on its own events.
        self.idempotent = x is not y

    def wake_mask(self, var: Variable) -> int:
        # The predicate output is Boolean: nothing to do until assigned.
        return FIXED_MASK if var is self.pred else BOUNDS_MASK

    # -- truth evaluation over intervals --------------------------------
    def _decided(self, dx: Interval, dy: Interval) -> Optional[int]:
        """0/1 when the intervals force the predicate, else None."""
        if self.kind is OpKind.EQ:
            if dx.is_point and dy.is_point:
                return int(dx.lo == dy.lo)
            if not dx.intersects(dy):
                return 0
            return None
        if self.kind is OpKind.NE:
            if dx.is_point and dy.is_point:
                return int(dx.lo != dy.lo)
            if not dx.intersects(dy):
                return 1
            return None
        if self.kind is OpKind.LT:
            if dx.hi < dy.lo:
                return 1
            if dx.lo >= dy.hi:
                return 0
            return None
        # LE
        if dx.hi <= dy.lo:
            return 1
        if dx.lo > dy.hi:
            return 0
        return None

    def _narrow_relation(
        self, value: int, dx: Interval, dy: Interval
    ) -> Optional[Tuple[Interval, Interval]]:
        """Apply the (possibly negated) relation to the operand intervals."""
        kind = self.kind
        if value == 0:
            if kind is OpKind.EQ:
                return narrow_ne(dx, dy)
            if kind is OpKind.NE:
                return narrow_eq(dx, dy)
            if kind is OpKind.LT:
                # not(x < y)  ==  y <= x
                narrowed = narrow_le(dy, dx)
                if narrowed is None:
                    return None
                new_y, new_x = narrowed
                return new_x, new_y
            # not(x <= y)  ==  y < x
            narrowed = narrow_lt(dy, dx)
            if narrowed is None:
                return None
            new_y, new_x = narrowed
            return new_x, new_y
        if kind is OpKind.EQ:
            return narrow_eq(dx, dy)
        if kind is OpKind.NE:
            return narrow_ne(dx, dy)
        if kind is OpKind.LT:
            return narrow_lt(dx, dy)
        return narrow_le(dx, dy)

    def propagate(self, store: DomainStore) -> Optional[Conflict]:
        domains = store.domains
        dx = domains[self.x.index]
        dy = domains[self.y.index]
        pred_index = self.pred.index
        pred_lo = store.lo[pred_index]
        pred_value = pred_lo if pred_lo == store.hi[pred_index] else None
        if pred_value is None:
            decided = self._decided(dx, dy)
            if decided is None:
                return None
            outcome = store.assign_bool(
                self.pred, decided, self, self.variables
            )
            if isinstance(outcome, Conflict):
                return outcome
            return None
        narrowed = self._narrow_relation(pred_value, dx, dy)
        if narrowed is None:
            return Conflict(
                source=self,
                antecedents=tuple(
                    event_id
                    for var in self.variables
                    if (event_id := store.latest_event[var.index]) is not None
                ),
                var=self.pred,
            )
        new_x, new_y = narrowed
        conflict = self._narrow(store, self.x, new_x)
        if conflict is not None:
            return conflict
        return self._narrow(store, self.y, new_y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Comparator({self.pred.name} == "
            f"({self.x.name} {self.kind.value} {self.y.name}))"
        )


class BoolGateProp(Propagator):
    """An atomic Boolean gate: AND/OR/NAND/NOR/NOT/BUF/XOR/XNOR.

    Propagation implements the classic three-valued implication rules:
    controlling input forces the output; output at non-controlled value
    forces remaining inputs once all others are at non-controlling values.
    """

    #: Boolean implication is the cheap tier: drained before any ICP.
    priority = 0

    def wake_mask(self, var: Variable) -> int:
        return FIXED_MASK

    def __init__(self, kind: OpKind, out: Variable, inputs: Sequence[Variable]):
        self.kind = kind
        self.out = out
        self.inputs = tuple(inputs)
        self.variables = (out,) + self.inputs
        if kind in (OpKind.AND, OpKind.NAND):
            self._controlling, self._inversion = 0, kind is OpKind.NAND
        elif kind in (OpKind.OR, OpKind.NOR):
            self._controlling, self._inversion = 1, kind is OpKind.NOR
        elif kind in (OpKind.NOT, OpKind.BUF):
            self._controlling = None
            self._inversion = kind is OpKind.NOT
        elif kind in (OpKind.XOR, OpKind.XNOR):
            self._controlling = None
            self._inversion = kind is OpKind.XNOR
        else:
            raise SolverError(f"not a Boolean gate kind: {kind}")

    def _assign(
        self, store: DomainStore, var: Variable, value: int
    ) -> Optional[Conflict]:
        outcome = store.assign_bool(var, value, self, self.variables)
        if isinstance(outcome, Conflict):
            return outcome
        return None

    def propagate(self, store: DomainStore) -> Optional[Conflict]:
        if self.kind in (OpKind.NOT, OpKind.BUF):
            return self._propagate_unary(store)
        if self.kind in (OpKind.XOR, OpKind.XNOR):
            return self._propagate_xor(store)
        return self._propagate_and_or(store)

    def _propagate_unary(self, store: DomainStore) -> Optional[Conflict]:
        input_value = store.bool_value(self.inputs[0])
        output_value = store.bool_value(self.out)
        flip = 1 if self._inversion else 0
        if input_value is not None:
            return self._assign(store, self.out, input_value ^ flip)
        if output_value is not None:
            return self._assign(store, self.inputs[0], output_value ^ flip)
        return None

    def _propagate_xor(self, store: DomainStore) -> Optional[Conflict]:
        a, b = self.inputs
        values = [store.bool_value(v) for v in (self.out, a, b)]
        flip = 1 if self._inversion else 0
        unknown = [i for i, v in enumerate(values) if v is None]
        if len(unknown) >= 2:
            return None
        # out ^ a ^ b == flip; solve for the single unknown (or check).
        if not unknown:
            if values[0] ^ values[1] ^ values[2] != flip:
                return Conflict(
                    source=self,
                    antecedents=tuple(
                        event_id
                        for var in self.variables
                        if (event_id := store.latest_event[var.index])
                        is not None
                    ),
                    var=self.out,
                )
            return None
        target = [self.out, a, b][unknown[0]]
        known = [v for v in values if v is not None]
        return self._assign(store, target, known[0] ^ known[1] ^ flip)

    def _propagate_and_or(self, store: DomainStore) -> Optional[Conflict]:
        controlling = self._controlling
        controlled_output = controlling ^ (1 if self._inversion else 0)
        lo_arr = store.lo
        hi_arr = store.hi
        # Forward: a controlling input decides the output.  One scan over
        # the flat bound arrays also counts the open inputs.
        unknown_count = 0
        first_unknown: Optional[Variable] = None
        for var in self.inputs:
            index = var.index
            value = lo_arr[index]
            if value != hi_arr[index]:
                unknown_count += 1
                if first_unknown is None:
                    first_unknown = var
            elif value == controlling:
                return self._assign(store, self.out, controlled_output)
        if unknown_count == 0:
            # All inputs at the non-controlling value.
            return self._assign(store, self.out, 1 - controlled_output)
        out_index = self.out.index
        output_value = lo_arr[out_index]
        if output_value != hi_arr[out_index]:
            return None
        if output_value == 1 - controlled_output:
            # Output at the non-controlled value: every input must be
            # non-controlling.
            non_controlling = 1 - controlling
            for var in self.inputs:
                index = var.index
                if lo_arr[index] != hi_arr[index]:
                    conflict = self._assign(store, var, non_controlling)
                    if conflict is not None:
                        return conflict
            return None
        # Output at the controlled value: if exactly one input is open,
        # it must be controlling.
        if unknown_count == 1:
            return self._assign(store, first_unknown, controlling)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(v.name for v in self.inputs)
        return f"BoolGate({self.out.name} = {self.kind.value}({ins}))"
