"""The domain store and trail: hybrid assignments with reasons.

Every change to a variable's domain — a Boolean assignment or an interval
narrowing — is recorded as an :class:`Event` on a trail, together with the
decision level and the *antecedent events* that caused it.  The events and
their antecedent edges form exactly the hybrid implication graph of
Section 2.4 of the paper ("a node represents a value assignment to a
variable ... a directed edge exists from n_a to n_c if n_a is part of the
value assignments that imply n_c"); conflict analysis walks it backwards.

Narrowing is monotonic (Section 2.2): an event's ``new`` interval is
always a strict subset of its ``old`` interval, so backtracking simply
restores ``old`` in reverse trail order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SolverError
from repro.intervals import Interval
from repro.constraints.variable import Variable

#: Reason tags for events that are not implied by a constraint.
DECISION = "decision"
ASSUMPTION = "assumption"

#: Event-kind bits: which aspect of the domain a narrowing changed.
#: Propagators declare which kinds they wake on per watched variable, so
#: the engine can skip wakeups for irrelevant bound movements.
EVENT_LOWER = 1   #: lower bound raised
EVENT_UPPER = 2   #: upper bound dropped
EVENT_FIXED = 4   #: domain collapsed to a single point
EVENT_BOOL = 8    #: a Boolean variable was assigned (implies FIXED)
EVENT_ANY = EVENT_LOWER | EVENT_UPPER | EVENT_FIXED | EVENT_BOOL


@dataclass(eq=False, slots=True)
class Event:
    """One domain change on the trail (a node of the implication graph)."""

    id: int
    var: Variable
    old: Interval
    new: Interval
    level: int
    #: The constraint object (propagator or clause) that implied this
    #: event, or the string tags DECISION / ASSUMPTION.
    reason: object
    #: Ids of the events this one was derived from (implication edges).
    antecedents: Tuple[int, ...]
    #: EVENT_* bits describing the change (for wakeup filtering).
    kinds: int = EVENT_ANY
    #: Id of this variable's previous event at narrow time (None when
    #: this is the variable's first narrowing) — lets backtracking
    #: restore ``latest_event`` in O(1) per popped event.
    prev_on_var: Optional[int] = None

    @property
    def is_decision(self) -> bool:
        return self.reason is DECISION

    @property
    def is_assumption(self) -> bool:
        return self.reason is ASSUMPTION

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event#{self.id}({self.var.name}: {self.old} -> {self.new} "
            f"@L{self.level})"
        )


@dataclass(eq=False)
class Conflict:
    """An empty domain found during deduction.

    ``source`` is the constraint that detected it; ``antecedents`` are the
    trail events whose conjunction is sufficient for the conflict (the cut
    starting point for conflict analysis).
    """

    source: object
    antecedents: Tuple[int, ...]
    var: Optional[Variable] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = self.var.name if self.var is not None else "?"
        return f"Conflict({name} via {self.source!r})"


NarrowOutcome = Union[None, Event, Conflict]


class DomainStore:
    """Current domains of all variables plus the trail."""

    def __init__(self, variables: Sequence[Variable]):
        self.variables = list(variables)
        for position, var in enumerate(self.variables):
            if var.index != position:
                raise SolverError("variable indices must be dense and ordered")
        self.domains: List[Interval] = [v.initial_domain for v in self.variables]
        #: Flat bound arrays — the hot-path representation.  ``domains``
        #: holds the equivalent interned :class:`Interval` objects for
        #: callers that want value objects; ``narrow``/``backtrack_to``
        #: keep all three in lockstep.
        self.lo: List[int] = [d.lo for d in self.domains]
        self.hi: List[int] = [d.hi for d in self.domains]
        self._is_bool: List[bool] = [v.is_bool for v in self.variables]
        self.trail: List[Event] = []
        #: Latest event id per variable (or None if never narrowed).
        self.latest_event: List[Optional[int]] = [None] * len(self.variables)
        self.decision_level = 0
        #: trail length at the start of each level; _level_marks[0] == 0.
        self._level_marks: List[int] = [0]
        #: Monotone count of narrowing events ever recorded (backtracking
        #: does not decrement) — the denominator-free throughput counter
        #: behind the harness's narrowings/sec metric.
        self.narrowings = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def domain(self, var: Variable) -> Interval:
        """Current interval of ``var``."""
        return self.domains[var.index]

    def is_assigned(self, var: Variable) -> bool:
        """True when the domain is a single value."""
        index = var.index
        return self.lo[index] == self.hi[index]

    def value(self, var: Variable) -> Optional[int]:
        """The assigned value, or ``None`` when not yet a point."""
        index = var.index
        lo = self.lo[index]
        return lo if lo == self.hi[index] else None

    def bool_value(self, var: Variable) -> Optional[int]:
        """Value of a Boolean variable (0/1) or ``None``."""
        index = var.index
        lo = self.lo[index]
        return lo if lo == self.hi[index] else None

    def event(self, event_id: int) -> Event:
        return self.trail[event_id]

    def level_of_var(self, var: Variable) -> Optional[int]:
        """Level of the latest event on ``var`` (None if at initial domain)."""
        latest = self.latest_event[var.index]
        return None if latest is None else self.trail[latest].level

    def events_at_level(self, level: int) -> Iterable[Event]:
        start = self._level_marks[level]
        end = (
            self._level_marks[level + 1]
            if level + 1 < len(self._level_marks)
            else len(self.trail)
        )
        return self.trail[start:end]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _antecedents_for(
        self, var: Variable, reason: object, involved: Optional[Sequence[Variable]]
    ) -> Tuple[int, ...]:
        """Collect implication-graph edges for a new event on ``var``.

        The antecedents are the latest events of every variable involved
        in the implying constraint (including the narrowed variable's own
        previous event, whose interval was part of the derivation).
        """
        if reason is DECISION or reason is ASSUMPTION:
            return ()
        antecedents: List[int] = []
        own_previous = self.latest_event[var.index]
        if own_previous is not None:
            antecedents.append(own_previous)
        if involved is not None:
            for other in involved:
                if other is var:
                    continue
                latest = self.latest_event[other.index]
                if latest is not None:
                    antecedents.append(latest)
        return tuple(antecedents)

    def narrow(
        self,
        var: Variable,
        new_domain: Interval,
        reason: object,
        involved: Optional[Sequence[Variable]] = None,
    ) -> NarrowOutcome:
        """Shrink ``var``'s domain to ``domain ∩ new_domain``.

        Returns ``None`` when nothing changed, the recorded :class:`Event`
        when the domain shrank, or a :class:`Conflict` when the
        intersection is empty.  ``involved`` lists the other variables of
        the implying constraint (for implication-graph edges); pass the
        constraint's variable tuple.
        """
        return self.narrow_bounds(
            var, new_domain.lo, new_domain.hi, reason, involved
        )

    def narrow_bounds(
        self,
        var: Variable,
        new_lo: int,
        new_hi: int,
        reason: object,
        involved: Optional[Sequence[Variable]] = None,
    ) -> NarrowOutcome:
        """:meth:`narrow` taking raw bounds — the allocation-free entry
        point for propagators that compute bounds as plain ints."""
        index = var.index
        cur_lo = self.lo[index]
        cur_hi = self.hi[index]
        meet_lo = cur_lo if cur_lo >= new_lo else new_lo
        meet_hi = cur_hi if cur_hi <= new_hi else new_hi
        if meet_lo == cur_lo and meet_hi == cur_hi:
            # No change — the overwhelmingly common case, decided here on
            # four int comparisons without allocating an interval.
            return None
        antecedents = self._antecedents_for(var, reason, involved)
        if meet_lo > meet_hi:
            return Conflict(source=reason, antecedents=antecedents, var=var)
        kinds = 0
        if meet_lo > cur_lo:
            kinds |= EVENT_LOWER
        if meet_hi < cur_hi:
            kinds |= EVENT_UPPER
        if meet_lo == meet_hi:
            kinds |= EVENT_FIXED
            if self._is_bool[index]:
                kinds |= EVENT_BOOL
        meet = Interval.make(meet_lo, meet_hi)
        event = Event(
            id=len(self.trail),
            var=var,
            old=self.domains[index],
            new=meet,
            level=self.decision_level,
            reason=reason,
            antecedents=antecedents,
            kinds=kinds,
            prev_on_var=self.latest_event[index],
        )
        self.trail.append(event)
        self.narrowings += 1
        self.domains[index] = meet
        self.lo[index] = meet_lo
        self.hi[index] = meet_hi
        self.latest_event[index] = event.id
        return event

    def assign_bool(
        self,
        var: Variable,
        value: int,
        reason: object,
        involved: Optional[Sequence[Variable]] = None,
    ) -> NarrowOutcome:
        """Assign a Boolean variable to 0 or 1."""
        if value not in (0, 1):
            raise SolverError(f"Boolean assignment must be 0/1, got {value}")
        return self.narrow(var, Interval.point(value), reason, involved)

    def decide_bool(self, var: Variable, value: int) -> Event:
        """Open a new decision level and assign ``var``."""
        self.push_level()
        outcome = self.assign_bool(var, value, DECISION)
        if not isinstance(outcome, Event):
            raise SolverError(
                f"decision on {var.name} had no effect or conflicted "
                f"(domain {self.domain(var)})"
            )
        return outcome

    def assume(self, var: Variable, domain: Interval) -> NarrowOutcome:
        """Level-0 assumption (the proposition being checked)."""
        if self.decision_level != 0:
            raise SolverError("assumptions must be made at level 0")
        return self.narrow(var, domain, ASSUMPTION)

    def add_variables(self, variables: Sequence[Variable]) -> None:
        """Append freshly compiled variables (frame-extension path).

        Only legal at level 0: extension must not interleave with an open
        search, and the new variables start at their initial domains with
        no trail history.
        """
        if self.decision_level != 0:
            raise SolverError("variables can only be added at level 0")
        for var in variables:
            if var.index != len(self.variables):
                raise SolverError(
                    f"extension variable {var.name} has index {var.index}, "
                    f"expected {len(self.variables)}"
                )
            self.variables.append(var)
            domain = var.initial_domain
            self.domains.append(domain)
            self.lo.append(domain.lo)
            self.hi.append(domain.hi)
            self._is_bool.append(var.is_bool)
            self.latest_event.append(None)

    # ------------------------------------------------------------------
    # Levels and backtracking
    # ------------------------------------------------------------------
    def push_level(self) -> int:
        """Open a new decision level."""
        self.decision_level += 1
        self._level_marks.append(len(self.trail))
        return self.decision_level

    def backtrack_to(self, level: int) -> None:
        """Undo every event above ``level`` (which becomes current)."""
        if level < 0 or level > self.decision_level:
            raise SolverError(
                f"cannot backtrack to level {level} from {self.decision_level}"
            )
        if level == self.decision_level:
            return
        keep = self._level_marks[level + 1]
        for event in reversed(self.trail[keep:]):
            index = event.var.index
            old = event.old
            self.domains[index] = old
            self.lo[index] = old.lo
            self.hi[index] = old.hi
            # ``prev_on_var`` was recorded at narrow() time, so restoring
            # the per-variable event chain is O(1) per popped event
            # instead of a scan over the event's antecedents.
            self.latest_event[index] = event.prev_on_var
        del self.trail[keep:]
        del self._level_marks[level + 1 :]
        self.decision_level = level

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def num_assigned(self) -> int:
        return sum(1 for lo, hi in zip(self.lo, self.hi) if lo == hi)

    def snapshot(self) -> List[Interval]:
        """Copy of all current domains (for tests and diagnostics)."""
        return list(self.domains)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DomainStore({len(self.variables)} vars, level "
            f"{self.decision_level}, {len(self.trail)} events)"
        )
