"""Event-driven hybrid constraint propagation (the paper's ``Ddeduce``).

The engine maintains a two-tier worklist of propagators.  Whenever a
variable's domain changes (by decision, assumption, clause propagation or
another propagator) the propagators registered on that variable whose
*wake mask* matches the event's kind bits are enqueued; the loop runs
until no further narrowing is possible (bounds consistency, Section 2.2)
or a conflict is found.

Two scheduling disciplines keep the fixpoint loop off the slow path:

* **Event-kind filtering** — each propagator declares, per watched
  variable, which domain changes matter to it (``EVENT_LOWER``,
  ``EVENT_UPPER``, ``EVENT_FIXED``, ``EVENT_BOOL``); non-matching events
  cost one mask test.  A propagator that just narrowed a variable is not
  re-woken by its own event: every propagator family leaves its
  constraint at a local fixpoint before returning (``idempotent``).
* **Two queue tiers** — cheap Boolean propagation (tier 0) drains fully
  before any expensive ICP propagator (tier 1) runs, so interval
  propagators always see the largest consistent set of Boolean facts and
  run fewer times.  Clause (BCP) propagation happens inline during event
  dispatch and therefore ahead of both tiers.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.clause import Clause, ClauseDatabase
from repro.constraints.propagators import Propagator
from repro.constraints.store import Conflict, DomainStore
from repro.constraints.variable import Variable


class PropagationEngine:
    """Runs BCP + ICP to a fixpoint over propagators and hybrid clauses."""

    def __init__(self, store: DomainStore, propagators: Sequence[Propagator]):
        self.store = store
        self.propagators: List[Propagator] = list(propagators)
        self.clause_db = ClauseDatabase(store)
        #: var index -> [(propagator position, wake mask)].
        self._watchers: Dict[int, List[Tuple[int, int]]] = {}
        for position, propagator in enumerate(self.propagators):
            for var in propagator.variables:
                self._watchers.setdefault(var.index, []).append(
                    (position, propagator.wake_mask(var))
                )
        #: Tier queues: 0 = cheap Boolean, 1 = expensive ICP.
        self._queues: Tuple[Deque[int], Deque[int]] = (deque(), deque())
        self._tier: List[int] = [p.priority for p in self.propagators]
        self._queued: Set[int] = set()
        #: Trail index up to which events have been dispatched.
        self._dispatched = 0
        #: Statistics.
        self.propagation_count = 0
        self.wakeup_count = 0
        #: Wall-time split (only accrued once :meth:`enable_timing` ran):
        #: ``bcp_time`` covers event dispatch (clause propagation) plus
        #: tier-0 Boolean propagators, ``icp_time`` the tier-1 interval
        #: propagators.
        self.bcp_time = 0.0
        self.icp_time = 0.0
        self._timed = False

    def enable_timing(self) -> None:
        """Switch :meth:`propagate` to the timed path (phase profiling).

        The untimed path stays completely free of clock reads; enabling
        is one-way for the lifetime of the engine.
        """
        self._timed = True

    # ------------------------------------------------------------------
    # Worklist management
    # ------------------------------------------------------------------
    def _enqueue(self, position: int) -> None:
        if position not in self._queued:
            self._queued.add(position)
            self.wakeup_count += 1
            self._queues[self._tier[position]].append(position)

    def enqueue_watchers_of(self, var: Variable) -> None:
        """Schedule every propagator watching ``var`` (mask-agnostic)."""
        for position, _mask in self._watchers.get(var.index, ()):
            self._enqueue(position)

    def enqueue_all(self) -> None:
        """Schedule every propagator (initial deduction / after learning)."""
        for position in range(len(self.propagators)):
            self._enqueue(position)

    def extend(self, propagators: Sequence[Propagator]) -> None:
        """Register freshly compiled propagators (frame-extension path).

        The new propagators are scheduled immediately so the next
        :meth:`propagate` folds the appended frame into the fixpoint.
        """
        base = len(self.propagators)
        for offset, propagator in enumerate(propagators):
            position = base + offset
            self.propagators.append(propagator)
            self._tier.append(propagator.priority)
            for var in propagator.variables:
                self._watchers.setdefault(var.index, []).append(
                    (position, propagator.wake_mask(var))
                )
            self._enqueue(position)

    def notify_backtrack(self) -> None:
        """Reset dispatch bookkeeping after the trail shrank."""
        self._dispatched = min(self._dispatched, len(self.store.trail))
        self._queues[0].clear()
        self._queues[1].clear()
        self._queued.clear()

    # ------------------------------------------------------------------
    # Clause installation
    # ------------------------------------------------------------------
    def add_clause(self, clause: Clause) -> Optional[Conflict]:
        """Install a clause and fold its consequences into the worklist."""
        conflict = self.clause_db.add_clause(clause)
        if conflict is not None:
            return conflict
        return None

    # ------------------------------------------------------------------
    # Fixpoint loop
    # ------------------------------------------------------------------
    def _dispatch_new_events(self) -> Optional[Conflict]:
        """Process trail events added since the last dispatch.

        Each new event triggers clause propagation (which may append more
        events) and schedules the propagators whose wake mask matches the
        event's kind bits — except the propagator that produced the event,
        which is already at its local fixpoint.
        """
        store = self.store
        trail = store.trail
        clause_db = self.clause_db
        watchers = self._watchers
        queued = self._queued
        queues = self._queues
        tier = self._tier
        while self._dispatched < len(trail):
            event = trail[self._dispatched]
            self._dispatched += 1
            conflict = clause_db.on_var_event(event.var)
            if conflict is not None:
                return conflict
            watching = watchers.get(event.var.index)
            if not watching:
                continue
            kinds = event.kinds
            reason = event.reason
            propagators = self.propagators
            for position, mask in watching:
                if mask & kinds and position not in queued:
                    propagator = propagators[position]
                    if propagator is reason and propagator.idempotent:
                        continue
                    queued.add(position)
                    self.wakeup_count += 1
                    queues[tier[position]].append(position)
        return None

    def propagate(self) -> Optional[Conflict]:
        """Run to bounds consistency; returns the first conflict or None."""
        if self._timed:
            return self._propagate_timed()
        conflict = self._dispatch_new_events()
        if conflict is not None:
            return conflict
        cheap, expensive = self._queues
        while cheap or expensive:
            position = cheap.popleft() if cheap else expensive.popleft()
            self._queued.discard(position)
            self.propagation_count += 1
            conflict = self.propagators[position].propagate(self.store)
            if conflict is not None:
                return conflict
            conflict = self._dispatch_new_events()
            if conflict is not None:
                return conflict
        return None

    def _propagate_timed(self) -> Optional[Conflict]:
        """The fixpoint loop with per-phase clocks (profiling only)."""
        perf = time.perf_counter
        start = perf()
        conflict = self._dispatch_new_events()
        self.bcp_time += perf() - start
        if conflict is not None:
            return conflict
        cheap, expensive = self._queues
        while cheap or expensive:
            if cheap:
                position = cheap.popleft()
                expensive_tier = False
            else:
                position = expensive.popleft()
                expensive_tier = True
            self._queued.discard(position)
            self.propagation_count += 1
            start = perf()
            conflict = self.propagators[position].propagate(self.store)
            elapsed = perf() - start
            if expensive_tier:
                self.icp_time += elapsed
            else:
                self.bcp_time += elapsed
            if conflict is not None:
                return conflict
            start = perf()
            conflict = self._dispatch_new_events()
            self.bcp_time += perf() - start
            if conflict is not None:
                return conflict
        return None
