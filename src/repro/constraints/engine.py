"""Event-driven hybrid constraint propagation (the paper's ``Ddeduce``).

The engine maintains a worklist of propagators.  Whenever a variable's
domain changes (by decision, assumption, clause propagation or another
propagator) every propagator registered on that variable is enqueued; the
loop runs until no further narrowing is possible (bounds consistency,
Section 2.2) or a conflict is found.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.constraints.clause import Clause, ClauseDatabase
from repro.constraints.propagators import Propagator
from repro.constraints.store import Conflict, DomainStore
from repro.constraints.variable import Variable


class PropagationEngine:
    """Runs BCP + ICP to a fixpoint over propagators and hybrid clauses."""

    def __init__(self, store: DomainStore, propagators: Sequence[Propagator]):
        self.store = store
        self.propagators: List[Propagator] = list(propagators)
        self.clause_db = ClauseDatabase(store)
        #: var index -> propagators mentioning that variable.
        self._watchers: Dict[int, List[int]] = {}
        for position, propagator in enumerate(self.propagators):
            for var in propagator.variables:
                self._watchers.setdefault(var.index, []).append(position)
        self._queue: Deque[int] = deque()
        self._queued: Set[int] = set()
        #: Trail index up to which events have been dispatched.
        self._dispatched = 0
        #: Statistics.
        self.propagation_count = 0

    # ------------------------------------------------------------------
    # Worklist management
    # ------------------------------------------------------------------
    def _enqueue(self, position: int) -> None:
        if position not in self._queued:
            self._queued.add(position)
            self._queue.append(position)

    def enqueue_watchers_of(self, var: Variable) -> None:
        for position in self._watchers.get(var.index, ()):
            self._enqueue(position)

    def enqueue_all(self) -> None:
        """Schedule every propagator (initial deduction / after learning)."""
        for position in range(len(self.propagators)):
            self._enqueue(position)

    def notify_backtrack(self) -> None:
        """Reset dispatch bookkeeping after the trail shrank."""
        self._dispatched = min(self._dispatched, len(self.store.trail))
        self._queue.clear()
        self._queued.clear()

    # ------------------------------------------------------------------
    # Clause installation
    # ------------------------------------------------------------------
    def add_clause(self, clause: Clause) -> Optional[Conflict]:
        """Install a clause and fold its consequences into the worklist."""
        conflict = self.clause_db.add_clause(clause)
        if conflict is not None:
            return conflict
        return None

    # ------------------------------------------------------------------
    # Fixpoint loop
    # ------------------------------------------------------------------
    def _dispatch_new_events(self) -> Optional[Conflict]:
        """Process trail events added since the last dispatch.

        Each new event triggers clause propagation (which may append more
        events) and schedules the propagators watching the variable.
        """
        while self._dispatched < len(self.store.trail):
            event = self.store.trail[self._dispatched]
            self._dispatched += 1
            conflict = self.clause_db.on_var_event(event.var)
            if conflict is not None:
                return conflict
            self.enqueue_watchers_of(event.var)
        return None

    def propagate(self) -> Optional[Conflict]:
        """Run to bounds consistency; returns the first conflict or None."""
        conflict = self._dispatch_new_events()
        if conflict is not None:
            return conflict
        while self._queue:
            position = self._queue.popleft()
            self._queued.discard(position)
            self.propagation_count += 1
            conflict = self.propagators[position].propagate(self.store)
            if conflict is not None:
                return conflict
            conflict = self._dispatch_new_events()
            if conflict is not None:
                return conflict
        return None
