"""Hybrid constraint system: variables, trail, clauses, propagators, engine.

This package is the substrate beneath HDPLL (Algorithm 1 of the paper):
it provides hybrid consistency checking — Boolean constraint propagation
plus interval constraint propagation over the compiled RTL — together
with the trail/implication-graph bookkeeping conflict analysis needs.
"""

from repro.constraints.clause import (
    FALSE,
    TRUE,
    UNASSIGNED,
    BoolLit,
    Clause,
    ClauseDatabase,
    Literal,
    WordLit,
    make_bool_lit,
)
from repro.constraints.compile import (
    CompiledSystem,
    build_kernels,
    compile_circuit,
    netlist_signature,
)
from repro.constraints.engine import PropagationEngine
from repro.constraints.fastpath import (
    ENGINE_IMPLS,
    numpy_available,
    resolve_engine_impl,
)
from repro.constraints.propagators import (
    BoolGateProp,
    ComparatorProp,
    LinearEqProp,
    MuxProp,
    Propagator,
)
from repro.constraints.store import (
    ASSUMPTION,
    DECISION,
    EVENT_ANY,
    EVENT_BOOL,
    EVENT_FIXED,
    EVENT_LOWER,
    EVENT_UPPER,
    Conflict,
    DomainStore,
    Event,
)
from repro.constraints.variable import Variable, VarOrigin

__all__ = [
    "ASSUMPTION",
    "BoolGateProp",
    "ENGINE_IMPLS",
    "BoolLit",
    "Clause",
    "ClauseDatabase",
    "ComparatorProp",
    "CompiledSystem",
    "Conflict",
    "DECISION",
    "DomainStore",
    "EVENT_ANY",
    "EVENT_BOOL",
    "EVENT_FIXED",
    "EVENT_LOWER",
    "EVENT_UPPER",
    "Event",
    "FALSE",
    "LinearEqProp",
    "Literal",
    "MuxProp",
    "PropagationEngine",
    "Propagator",
    "TRUE",
    "UNASSIGNED",
    "Variable",
    "VarOrigin",
    "WordLit",
    "build_kernels",
    "compile_circuit",
    "make_bool_lit",
    "netlist_signature",
    "numpy_available",
    "resolve_engine_impl",
]
