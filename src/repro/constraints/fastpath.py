"""NumPy batch filtering and engine-impl selection for fast propagation.

This module backs ``SolverConfig.engine_impl``:

* :func:`resolve_engine_impl` validates the requested implementation and
  performs the documented fallback — ``"vectorized"`` degrades to
  ``"reference"`` with a single logged warning when NumPy is absent
  (NumPy is an optional extra: ``pip install .[fast]``).
* :class:`VectorizedFilter` is the vectorized half of the accelerated
  engine: it sweeps the expensive (ICP) worklist tier in NumPy batches
  grouped by propagator family and flags queue entries whose run is
  *provably* a no-op — no narrowing, no conflict — against the bounds at
  sweep time.  The engine then pops flagged entries without calling
  their kernel.

Parity contract
---------------
The filter must be behaviourally invisible.  Three properties make the
skip sound and bit-for-bit exact:

* The no-op masks are exact transcriptions of each propagator family's
  narrowing math: a row is flagged only when running the propagator on
  the swept bounds would change nothing and return no conflict.
* A flag is only honoured while the swept bounds are still current: the
  engine checks, per pop, that no watched variable of the propagator has
  a trail event at or after the sweep mark (``latest_event`` staleness
  test).  Backtracking pops events — ``latest_event`` can move *below*
  the mark while bounds widen — so the engine invalidates the filter
  wholesale on every backtrack, which keeps the mark monotone within
  each validity window.
* Skipped pops still count as propagations (the run would have been a
  no-op, exactly as if the kernel had executed), so decision, conflict
  and propagation counters agree with the reference engine.  The skips
  are additionally reported as ``props_filtered``.

Linear rows are admitted to the batch only when an a-priori bound (from
the variables' *initial* domains, which narrowing never widens) keeps
every intermediate value inside int64 — NumPy arithmetic here must not
wrap where Python ints would not.
"""

from __future__ import annotations

import logging
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SolverError
from repro.intervals import register_cache_reset

logger = logging.getLogger(__name__)

#: Recognised values of ``SolverConfig.engine_impl``.
ENGINE_IMPLS = ("reference", "vectorized", "specialized")

#: Lazily imported numpy module; "unset" until first query.  Importing
#: NumPy costs ~100ms, which reference-mode users should never pay.
_NUMPY_STATE: List[object] = ["unset"]
#: Whether the vectorized->reference fallback warning fired already
#: (cleared by ``reset_interval_cache`` so pool workers warn once each).
_WARNED = [False]

#: Values must stay below this for a linear row to be batched in int64.
_INT64_LIMIT = 1 << 62


def _get_numpy():
    state = _NUMPY_STATE[0]
    if state != "unset":
        return state
    try:
        import numpy
    except ImportError:
        numpy = None
    _NUMPY_STATE[0] = numpy
    return numpy


def numpy_available() -> bool:
    """True when NumPy can be imported (the ``fast`` extra is installed)."""
    return _get_numpy() is not None


def resolve_engine_impl(requested: str) -> str:
    """Map a configured ``engine_impl`` to the one that will actually run.

    Unknown names raise :class:`~repro.errors.SolverError`;
    ``"vectorized"`` without NumPy falls back to ``"reference"`` with a
    single logged warning per process.
    """
    if requested not in ENGINE_IMPLS:
        raise SolverError(
            f"unknown engine_impl {requested!r}; "
            f"expected one of {ENGINE_IMPLS}"
        )
    if requested == "vectorized" and not numpy_available():
        if not _WARNED[0]:
            _WARNED[0] = True
            logger.warning(
                "engine_impl='vectorized' requested but NumPy is not "
                "installed; falling back to 'reference' "
                "(pip install .[fast] enables the vectorized engine)"
            )
        return "reference"
    return requested


def _reset_fastpath_state() -> None:
    _WARNED[0] = False


register_cache_reset(_reset_fastpath_state)


class VectorizedFilter:
    """Batch no-op detection over the expensive (ICP) worklist tier.

    Built from the propagator list and its kernel *plan* (see
    :func:`repro.constraints.compile.build_kernels`); only comparator,
    mux and small linear rows participate — Boolean gates live on the
    cheap tier where a batch sweep cannot pay for itself.
    """

    #: Sweep only when the expensive queue is at least this deep.  The
    #: specialized kernels make an individual run nearly as cheap as one
    #: gathered NumPy row, so a sweep only pays for itself on the deep
    #: saturation queues (initial propagation, wide frontiers) where the
    #: batch amortizes the gather; shallow steady-state queues run the
    #: kernels directly.
    MIN_QUEUE = 48
    #: Skip a family whose queued cohort is smaller than this.
    MIN_BATCH = 24
    #: Expensive propagators actually run since the last sweep before a
    #: new sweep is worthwhile (freshly swept flags are still valid).
    DEBT_THRESHOLD = 32

    def __init__(self, propagators: Sequence, plan: Sequence) -> None:
        np = _get_numpy()
        if np is None:  # pragma: no cover - callers resolve impl first
            raise SolverError(
                "VectorizedFilter requires NumPy (pip install .[fast])"
            )
        self._np = np
        #: position -> (family, row); families: 0=comparator 1=mux 2=linear.
        self._cohort: Dict[int, Tuple[int, int]] = {}
        #: position -> watched variable indices (staleness test).
        self._vars_of: Dict[int, Tuple[int, ...]] = {}
        self._cmp_pi: List[int] = []
        self._cmp_xi: List[int] = []
        self._cmp_yi: List[int] = []
        self._cmp_kind: List[int] = []
        self._mux_oi: List[int] = []
        self._mux_si: List[int] = []
        self._mux_ti: List[int] = []
        self._mux_ei: List[int] = []
        self._lin_const: List[int] = []
        self._lin_coeff: Tuple[List[int], ...] = ([], [], [], [])
        self._lin_idx: Tuple[List[int], ...] = ([], [], [], [])
        #: Flagged-no-op positions of the current validity window.
        self._flags: Set[int] = set()
        self._mark = 0
        #: Expensive runs since the last sweep; starts saturated so the
        #: first deep queue (initial saturation) sweeps immediately.
        self._debt = self.DEBT_THRESHOLD
        #: Statistics.
        self.sweeps = 0
        self.flagged = 0
        self.extend(propagators, plan, 0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _int64_safe(prop) -> bool:
        """Can every intermediate of this linear row's math fit int64?

        Bounds all terms by the *initial* domains (narrowing is
        monotone, so live bounds are always inside them); residuals are
        at most ``|constant| + 2 * sum(|c_j| * max|domain_j|)``.
        """
        total = abs(prop.constant)
        for coeff, var in zip(prop.coeffs, prop.variables):
            domain = var.initial_domain
            magnitude = max(abs(domain.lo), abs(domain.hi))
            total += 2 * abs(coeff) * magnitude
        return total < _INT64_LIMIT

    def extend(self, propagators: Sequence, plan: Sequence, base: int) -> None:
        """Absorb appended propagators (engine/frame extension path)."""
        for offset, (prop, entry) in enumerate(zip(propagators, plan)):
            if entry is None:
                continue
            family = entry[0]
            position = base + offset
            if family == "cmp":
                row = len(self._cmp_pi)
                self._cmp_pi.append(prop.pred.index)
                self._cmp_xi.append(prop.x.index)
                self._cmp_yi.append(prop.y.index)
                self._cmp_kind.append(entry[1])
                self._cohort[position] = (0, row)
            elif family == "mux":
                row = len(self._mux_oi)
                self._mux_oi.append(prop.out.index)
                self._mux_si.append(prop.sel.index)
                self._mux_ti.append(prop.then_var.index)
                self._mux_ei.append(prop.else_var.index)
                self._cohort[position] = (1, row)
            elif family == "lin":
                if not self._int64_safe(prop):
                    continue
                row = len(self._lin_const)
                coeffs = prop.coeffs
                variables = prop.variables
                for slot in range(4):
                    if slot < len(coeffs):
                        self._lin_coeff[slot].append(coeffs[slot])
                        self._lin_idx[slot].append(variables[slot].index)
                    else:
                        self._lin_coeff[slot].append(0)
                        self._lin_idx[slot].append(0)
                self._lin_const.append(prop.constant)
                self._cohort[position] = (2, row)
            else:
                # Gate families run on the cheap tier — never swept.
                continue
            self._vars_of[position] = tuple(
                v.index for v in prop.variables
            )
        self.invalidate()

    # ------------------------------------------------------------------
    # Validity window
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every flag (called on backtrack and extension).

        Backtracking widens bounds while popping trail events, which
        would defeat the per-pop ``latest_event >= mark`` staleness
        test; a wholesale invalidation restores the invariant that the
        mark is monotone within a validity window.
        """
        self._flags.clear()

    def note_run(self) -> None:
        """Record that an expensive propagator actually executed."""
        self._debt += 1

    def maybe_sweep(self, queue, store) -> None:
        """Sweep when the queue is deep and enough work ran since last."""
        if len(queue) >= self.MIN_QUEUE and self._debt >= self.DEBT_THRESHOLD:
            self.sweep(queue, store)

    def is_noop(self, position: int, store) -> bool:
        """Honour a flag only while the swept bounds are still current."""
        flags = self._flags
        if position not in flags:
            return False
        mark = self._mark
        latest = store.latest_event
        for index in self._vars_of[position]:
            event_id = latest[index]
            if event_id is not None and event_id >= mark:
                flags.discard(position)
                return False
        return True

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(self, queue, store) -> None:
        """Recompute no-op flags for the queued filterable cohorts."""
        self.sweeps += 1
        self._debt = 0
        self._flags.clear()
        self._mark = len(store.trail)
        cohort = self._cohort
        cmp_rows: List[int] = []
        cmp_pos: List[int] = []
        mux_rows: List[int] = []
        mux_pos: List[int] = []
        lin_rows: List[int] = []
        lin_pos: List[int] = []
        for position in queue:
            entry = cohort.get(position)
            if entry is None:
                continue
            family, row = entry
            if family == 0:
                cmp_rows.append(row)
                cmp_pos.append(position)
            elif family == 1:
                mux_rows.append(row)
                mux_pos.append(position)
            else:
                lin_rows.append(row)
                lin_pos.append(position)
        if len(cmp_rows) >= self.MIN_BATCH:
            self._sweep_cmp(cmp_rows, cmp_pos, store)
        if len(mux_rows) >= self.MIN_BATCH:
            self._sweep_mux(mux_rows, mux_pos, store)
        if len(lin_rows) >= self.MIN_BATCH:
            self._sweep_lin(lin_rows, lin_pos, store)

    def _gather(self, indices, values):
        np = self._np
        return np.fromiter(
            itemgetter(*indices)(values), np.int64, len(indices)
        )

    def _flag(self, noop, positions: List[int]) -> None:
        flags = self._flags
        hits = self._np.nonzero(noop)[0]
        for i in hits.tolist():
            flags.add(positions[i])
        self.flagged += len(hits)

    def _sweep_cmp(self, rows, positions, store) -> None:
        np = self._np
        get = itemgetter(*rows)
        pi = get(self._cmp_pi)
        xi = get(self._cmp_xi)
        yi = get(self._cmp_yi)
        kind = np.fromiter(get(self._cmp_kind), np.int64, len(rows))
        lo = store.lo
        hi = store.hi
        pl = self._gather(pi, lo)
        ph = self._gather(pi, hi)
        xl = self._gather(xi, lo)
        xh = self._gather(xi, hi)
        yl = self._gather(yi, lo)
        yh = self._gather(yi, hi)
        is_eq = kind == 0
        is_ne = kind == 1
        is_lt = kind == 2
        # Unassigned predicate: no-op iff _decided() returns None.
        point_pair = (xl == xh) & (yl == yh)
        un_eqne = ~point_pair & ~((xh < yl) | (yh < xl))
        un_lt = ~((xh < yl) | (xl >= yh))
        un_le = ~((xh <= yl) | (xl > yh))
        noop_un = np.where(is_lt, un_lt, np.where(is_eq | is_ne, un_eqne, un_le))
        # Assigned predicate: no-op iff applying the (possibly negated)
        # relation changes neither operand and raises no conflict.
        v1 = pl == 1
        noop_eq = (xl == yl) & (xh == yh)
        x_point = xl == xh
        y_point = yl == yh
        ne_c1 = y_point & x_point & (xl == yl)
        ne_chx = (
            y_point & ~x_point & (xl <= yl) & (yl <= xh)
            & ((yl == xl) | (yl == xh))
        )
        ne_chy = (
            x_point & ~y_point & (yl <= xl) & (xl <= yh)
            & ((xl == yl) | (xl == yh))
        )
        noop_ne = ~(ne_c1 | ne_chx | ne_chy)
        noop_lt = np.where(v1, (xh < yh) & (xl < yl), (yh <= xh) & (yl <= xl))
        noop_le = np.where(v1, (xh <= yh) & (xl <= yl), (yh < xh) & (yl < xl))
        eq_apply = (is_eq & v1) | (is_ne & ~v1)
        noop_as = np.where(
            eq_apply,
            noop_eq,
            np.where(
                is_eq | is_ne,
                noop_ne,
                np.where(is_lt, noop_lt, noop_le),
            ),
        )
        self._flag(np.where(pl != ph, noop_un, noop_as), positions)

    def _sweep_mux(self, rows, positions, store) -> None:
        np = self._np
        get = itemgetter(*rows)
        lo = store.lo
        hi = store.hi
        oi = get(self._mux_oi)
        si = get(self._mux_si)
        ti = get(self._mux_ti)
        ei = get(self._mux_ei)
        ol = self._gather(oi, lo)
        oh = self._gather(oi, hi)
        sl = self._gather(si, lo)
        sh = self._gather(si, hi)
        tl = self._gather(ti, lo)
        th = self._gather(ti, hi)
        el = self._gather(ei, lo)
        eh = self._gather(ei, hi)
        # Select assigned: out and the chosen branch meet; no-op iff they
        # are already equal.
        sel_one = sl == 1
        cl = np.where(sel_one, tl, el)
        ch = np.where(sel_one, th, eh)
        noop_assigned = (ol == cl) & (oh == ch)
        # Select open: hull-narrow the output, then check that at least
        # one branch stays compatible.
        hl = np.minimum(tl, el)
        hh = np.maximum(th, eh)
        hull_noop = (hl <= ol) & (hh >= oh)
        then_ok = (ol <= th) & (tl <= oh)
        else_ok = (ol <= eh) & (el <= oh)
        noop_open = hull_noop & (then_ok | else_ok)
        self._flag(np.where(sl == sh, noop_assigned, noop_open), positions)

    def _sweep_lin(self, rows, positions, store) -> None:
        np = self._np
        get = itemgetter(*rows)
        n = len(rows)
        lo = store.lo
        hi = store.hi
        const = np.fromiter(get(self._lin_const), np.int64, n)
        coeffs = []
        lo_s = []
        hi_s = []
        t_lo = []
        t_hi = []
        total_lo = np.zeros(n, np.int64)
        total_hi = np.zeros(n, np.int64)
        for slot in range(4):
            c = np.fromiter(get(self._lin_coeff[slot]), np.int64, n)
            idx = get(self._lin_idx[slot])
            slot_lo = self._gather(idx, lo)
            slot_hi = self._gather(idx, hi)
            s_lo = np.where(c >= 0, c * slot_lo, c * slot_hi)
            s_hi = np.where(c >= 0, c * slot_hi, c * slot_lo)
            coeffs.append(c)
            lo_s.append(slot_lo)
            hi_s.append(slot_hi)
            t_lo.append(s_lo)
            t_hi.append(s_hi)
            total_lo += s_lo
            total_hi += s_hi
        # A run acts iff the totals exclude the constant (conflict) or
        # any slot's residual bound would tighten its variable.
        act = (total_lo > const) | (total_hi < const)
        for slot in range(4):
            c = coeffs[slot]
            nonzero = c != 0
            safe = np.where(nonzero, c, 1)
            res_lo = const - (total_hi - t_hi[slot])
            res_hi = const - (total_lo - t_lo[slot])
            vlo = np.where(c > 0, -((-res_lo) // safe), -((-res_hi) // safe))
            vhi = np.where(c > 0, res_hi // safe, res_lo // safe)
            act |= nonzero & ((vlo > lo_s[slot]) | (vhi < hi_s[slot]))
        self._flag(~act, positions)
