"""Solver variables.

A variable is either Boolean (domain ``<0, 1>``) or a word of some width
(domain ``<0, 2**w - 1>``), per Section 2.1 of the paper.  Auxiliary
variables (carries, borrows, extract parts) are marked so that decision
heuristics and statistics can distinguish them from circuit nets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.intervals import BOOL_DOMAIN, Interval, interval_for_width


class VarOrigin(enum.Enum):
    """Where a solver variable came from."""

    NET = "net"            # backed by a circuit net
    AUXILIARY = "aux"      # carry/borrow/quotient introduced by compilation
    ASSUMPTION = "assume"  # proposition-level helper


@dataclass(eq=False)
class Variable:
    """A solver variable with a fixed initial interval domain."""

    index: int
    name: str
    width: int
    origin: VarOrigin = VarOrigin.NET
    #: Index of the backing net in the source circuit, when origin is NET.
    net_index: Optional[int] = None
    #: Initial domain; defaults to the full width domain.
    initial_domain: Interval = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.initial_domain is None:
            self.initial_domain = interval_for_width(self.width)

    @property
    def is_bool(self) -> bool:
        """True when this variable ranges over ``<0, 1>``."""
        return self.width == 1 and self.initial_domain == BOOL_DOMAIN

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Var({self.name}:{self.width})"
