"""Hybrid clauses: disjunctions of Boolean and word literals.

Section 2.1 of the paper: a *hybrid clause* is a disjunction of Boolean
literals and word literals, where a word literal pairs a word variable
with a finite interval.  A positive word literal ``{w, b}`` asserts that
``w`` takes a value in ``b``; a negative literal asserts a value in
``D(w) \\ b``.

Against a monotonically narrowing domain store, literal status is
three-valued and monotone (unassigned can become true or false, and then
never changes), which is what makes watched-literal propagation sound for
hybrid clauses exactly as for Boolean ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SolverError
from repro.intervals import Interval
from repro.constraints.store import Conflict, DomainStore, Event
from repro.constraints.variable import Variable

TRUE = 1
FALSE = 0
UNASSIGNED = -1

#: Sentinel: a falsified watch migrated to another literal.
_MOVED = object()


@dataclass(frozen=True)
class BoolLit:
    """A Boolean literal: ``var`` (positive) or ``¬var`` (negative)."""

    var: Variable
    positive: bool = True

    def negated(self) -> "BoolLit":
        return BoolLit(self.var, not self.positive)

    def status(self, store: DomainStore) -> int:
        value = store.bool_value(self.var)
        if value is None:
            return UNASSIGNED
        satisfied = bool(value) == self.positive
        return TRUE if satisfied else FALSE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "" if self.positive else "~"
        return f"{prefix}{self.var.name}"


@dataclass(frozen=True)
class WordLit:
    """A word literal ``{var, interval}`` or its negation.

    Positive: true when ``D(var) ⊆ interval``; false when
    ``D(var) ∩ interval = ∅``.  Negative literals are the dual.
    """

    var: Variable
    interval: Interval
    positive: bool = True

    def negated(self) -> "WordLit":
        return WordLit(self.var, self.interval, not self.positive)

    def status(self, store: DomainStore) -> int:
        domain = store.domain(self.var)
        if self.positive:
            if self.interval.contains_interval(domain):
                return TRUE
            if not self.interval.intersects(domain):
                return FALSE
            return UNASSIGNED
        if not self.interval.intersects(domain):
            return TRUE
        if self.interval.contains_interval(domain):
            return FALSE
        return UNASSIGNED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        relation = "in" if self.positive else "notin"
        return f"({self.var.name} {relation} {self.interval})"


Literal = Union[BoolLit, WordLit]


def make_bool_lit(var: Variable, value: int) -> BoolLit:
    """The literal satisfied when ``var == value``."""
    return BoolLit(var, positive=bool(value))


#: Clause-database tiers (Glucose-style).  Core clauses ("glue", LBD at
#: or below the core threshold) are never evicted; mid clauses survive
#: routine reductions but are demoted to local when stale; local clauses
#: are the eviction pool.
TIER_CORE = 0
TIER_MID = 1
TIER_LOCAL = 2


@dataclass(eq=False)
class Clause:
    """A hybrid clause with optional learned-clause bookkeeping."""

    literals: Tuple[Literal, ...]
    learned: bool = False
    #: Provenance tag: "predicate-learning", "conflict", "j-conflict",
    #: "shared" (imported from a portfolio peer), ...
    origin: str = "problem"
    activity: float = 0.0
    #: Literal-block distance at learning time (0 = not computed);
    #: the portfolio export filter caps on it.
    lbd: int = 0
    #: Database tier (:data:`TIER_CORE` / :data:`TIER_MID` /
    #: :data:`TIER_LOCAL`), assigned from ``lbd`` at install time.
    tier: int = TIER_LOCAL
    #: Reductions this (mid-tier) clause sat through without its
    #: activity moving; at the staleness limit it is demoted.
    stale_rounds: int = 0
    #: Activity level at the last staleness check.
    activity_mark: float = 0.0

    def __post_init__(self) -> None:
        if not self.literals:
            raise SolverError("empty clause constructed directly")
        seen = set()
        unique: List[Literal] = []
        for literal in self.literals:
            key = (
                literal.var.index,
                literal.positive,
                getattr(literal, "interval", None),
            )
            if key not in seen:
                seen.add(key)
                unique.append(literal)
        self.literals = tuple(unique)

    def status(self, store: DomainStore) -> int:
        """TRUE if any literal true, FALSE if all false, else UNASSIGNED."""
        any_unassigned = False
        for literal in self.literals:
            state = literal.status(store)
            if state == TRUE:
                return TRUE
            if state == UNASSIGNED:
                any_unassigned = True
        return UNASSIGNED if any_unassigned else FALSE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " | ".join(repr(literal) for literal in self.literals)
        return f"Clause[{body}]"


def _propagate_literal(
    clause: Clause, literal: Literal, store: DomainStore
) -> object:
    """Make the last unassigned literal of a unit clause true."""
    involved = [lit.var for lit in clause.literals]
    if isinstance(literal, BoolLit):
        return store.assign_bool(
            literal.var, 1 if literal.positive else 0, clause, involved
        )
    if literal.positive:
        return store.narrow(literal.var, literal.interval, clause, involved)
    # Negative word literal: remove the interval where representable.
    remainder = store.domain(literal.var).difference(literal.interval)
    if remainder is None:
        # Domain entirely inside the excluded interval: conflict.
        antecedents = tuple(
            event_id
            for var in involved
            if (event_id := store.latest_event[var.index]) is not None
        )
        return Conflict(source=clause, antecedents=antecedents, var=literal.var)
    return store.narrow(literal.var, remainder, clause, involved)


class ClauseDatabase:
    """Clause storage with two-watched-literal propagation.

    Every clause watches two of its literals; a clause is only *visited*
    when a watched variable's domain changes, and only *examined* when
    that event actually falsified the watched literal.  Because literal
    status is monotone under narrowing, the standard invariant (watch two
    non-false literals, or the clause is satisfied / was handled when a
    watch fell) carries over unchanged from Boolean CDCL: a kept-false
    watch is only ever kept when the other watch is true or the clause
    was unit-propagated, and in both cases the falsifying event is at the
    current decision level, so backtracking unassigns it no later than
    the fact that justified keeping it.

    Watch lists are maintained in place: a moved watch is appended to its
    new variable's list and swap-removed from the old one in O(1), never
    via a linear pop-scan.
    """

    def __init__(self, store: DomainStore):
        self.store = store
        self.clauses: List[Clause] = []
        #: var index -> list of [clause, watch position] entries.
        self.watches: Dict[int, List[List[object]]] = {}
        #: id(clause) -> its two watched literal positions.
        self._watch_positions: Dict[int, Tuple[int, int]] = {}
        #: Perf counters: watch-list entries inspected / watches moved.
        self.clause_visits = 0
        self.watch_moves = 0
        #: Learned clauses dropped by reduction/cap eviction.
        self.clauses_evicted = 0
        #: Mid-tier clauses demoted to the local tier for staleness.
        self.clauses_demoted = 0
        #: Tier thresholds (see :class:`repro.core.config.SolverConfig`);
        #: the owning solver overrides these from its config.
        self.core_lbd_max = 2
        self.mid_lbd_max = 6
        self.mid_staleness = 2

    # ------------------------------------------------------------------
    # Literal status against the flat domain arrays
    # ------------------------------------------------------------------
    def _lit_status(self, literal: Literal) -> int:
        """Status of one literal, read off ``store.lo``/``store.hi``."""
        store = self.store
        index = literal.var.index
        lo = store.lo[index]
        hi = store.hi[index]
        if type(literal) is BoolLit:
            if lo != hi:
                return UNASSIGNED
            return TRUE if bool(lo) == literal.positive else FALSE
        interval = literal.interval
        if literal.positive:
            if interval.lo <= lo and hi <= interval.hi:
                return TRUE
            if interval.hi < lo or hi < interval.lo:
                return FALSE
            return UNASSIGNED
        if interval.hi < lo or hi < interval.lo:
            return TRUE
        if interval.lo <= lo and hi <= interval.hi:
            return FALSE
        return UNASSIGNED

    # ------------------------------------------------------------------
    # Clause installation
    # ------------------------------------------------------------------
    def add_clause(self, clause: Clause) -> Optional[Conflict]:
        """Install a clause; may immediately propagate or conflict.

        The clause may be unit or even false under the current trail
        (learned clauses usually are); the caller must then backtrack
        and re-propagate as appropriate.  Watches are placed on non-false
        literals whenever any exist, establishing the invariant at entry.
        """
        if clause.learned and clause.origin in self._DISPOSABLE_ORIGINS:
            self._assign_tier(clause)
        self.clauses.append(clause)
        literals = clause.literals
        true_pos = -1
        open1 = -1
        open2 = -1
        for position, literal in enumerate(literals):
            status = self._lit_status(literal)
            if status == TRUE:
                true_pos = position
                break
            if status == UNASSIGNED:
                if open1 < 0:
                    open1 = position
                elif open2 < 0:
                    open2 = position
        if true_pos >= 0:
            other = open1 if open1 >= 0 else (true_pos + 1) % len(literals)
            self._attach(clause, true_pos, other)
            return None
        if open1 < 0:
            # Every literal false under the current trail.
            self._attach(clause, 0, min(1, len(literals) - 1))
            return self._conflict(clause)
        if open2 < 0:
            # Unit: assert the single open literal.
            other = (open1 + 1) % len(literals) if len(literals) > 1 else open1
            self._attach(clause, open1, other)
            outcome = _propagate_literal(clause, literals[open1], self.store)
            if isinstance(outcome, Conflict):
                return outcome
            return None
        self._attach(clause, open1, open2)
        return None

    def _attach(self, clause: Clause, first: int, second: int) -> None:
        """Register fresh watch entries for a newly installed clause."""
        self._watch_positions[id(clause)] = (first, second)
        for position in {first, second}:
            var = clause.literals[position].var
            self.watches.setdefault(var.index, []).append([clause, position])

    def _set_watches(self, clause: Clause, first: int, second: int) -> None:
        """Repoint both watches (slow path, used by the reference scan)."""
        self._detach(clause)
        self._attach(clause, first, second)

    def _detach(self, clause: Clause) -> None:
        positions = self._watch_positions.pop(id(clause), None)
        if positions is None:
            return
        for position in set(positions):
            var = clause.literals[position].var
            entries = self.watches.get(var.index, [])
            for i, entry in enumerate(entries):
                if entry[0] is clause and entry[1] == position:
                    last = entries.pop()
                    if i < len(entries):
                        entries[i] = last
                    break

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def on_var_event(self, var: Variable) -> Optional[Conflict]:
        """Visit the clauses watching ``var``; returns a conflict or None.

        Only clauses whose *watched literal on this variable* was
        falsified by the event are examined; everything else is a
        two-int-compare skip.
        """
        entries = self.watches.get(var.index)
        if not entries:
            return None
        i = 0
        visits = 0
        lo_arr = self.store.lo
        hi_arr = self.store.hi
        while i < len(entries):
            entry = entries[i]
            clause: Clause = entry[0]  # type: ignore[assignment]
            position: int = entry[1]  # type: ignore[assignment]
            visits += 1
            # Inlined ``_lit_status(...) == FALSE`` — the overwhelmingly
            # common skip must not pay a method call per entry.
            literal = clause.literals[position]
            index = literal.var.index
            vlo = lo_arr[index]
            vhi = hi_arr[index]
            if type(literal) is BoolLit:
                falsified = vlo == vhi and bool(vlo) != literal.positive
            else:
                interval = literal.interval
                if literal.positive:
                    falsified = interval.hi < vlo or vhi < interval.lo
                else:
                    falsified = interval.lo <= vlo and vhi <= interval.hi
            if not falsified:
                i += 1
                continue
            outcome = self._on_watch_falsified(clause, position, entries, i)
            if outcome is _MOVED:
                # Entry i was swap-replaced; re-examine the same slot.
                continue
            if outcome is not None:
                self.clause_visits += visits
                return outcome
            i += 1
        self.clause_visits += visits
        return None

    def _on_watch_falsified(
        self,
        clause: Clause,
        position: int,
        entries: List[List[object]],
        entry_index: int,
    ) -> object:
        """Handle one falsified watch: rewatch, satisfy, unit, or conflict.

        Returns ``_MOVED`` when the watch migrated (the caller's entry was
        swap-removed), ``None`` when the clause is satisfied or was unit
        propagated (watches kept), or a :class:`Conflict`.
        """
        first, second = self._watch_positions[id(clause)]
        other = second if position == first else first
        literals = clause.literals
        if other != position:
            other_status = self._lit_status(literals[other])
            if other_status == TRUE:
                # Satisfied; the kept-false watch is at the current level,
                # which cannot outlive the satisfying assignment.
                return None
        else:
            other_status = FALSE
        for replacement in range(len(literals)):
            if replacement == position or replacement == other:
                continue
            if self._lit_status(literals[replacement]) == FALSE:
                continue
            # Move this watch to the non-false replacement literal.
            self.watch_moves += 1
            if position == first:
                self._watch_positions[id(clause)] = (replacement, second)
            else:
                self._watch_positions[id(clause)] = (first, replacement)
            target = literals[replacement].var.index
            self.watches.setdefault(target, []).append([clause, replacement])
            # Swap-remove the old entry.  When the replacement is on the
            # same variable, the pop below grabs the entry just appended
            # and lands it in the vacated slot — still correct.
            last = entries.pop()
            if entry_index < len(entries):
                entries[entry_index] = last
            return _MOVED
        # No replacement: the clause is unit on ``other`` or conflicting.
        if other == position or other_status == FALSE:
            return self._conflict(clause)
        outcome = _propagate_literal(clause, literals[other], self.store)
        if isinstance(outcome, Conflict):
            return outcome
        return None

    def _examine(self, clause: Clause) -> Optional[Conflict]:
        """Reference full scan: satisfied, unit, conflicting, or rewatch.

        Used by :meth:`recheck_all` (the naive reference path the
        differential tests compare against) and safe in any watch state.
        """
        literals = clause.literals
        open1 = -1
        open2 = -1
        for position, literal in enumerate(literals):
            status = self._lit_status(literal)
            if status == TRUE:
                return None
            if status == UNASSIGNED:
                if open1 < 0:
                    open1 = position
                elif open2 < 0:
                    open2 = position
        if open1 < 0:
            return self._conflict(clause)
        if open2 < 0:
            outcome = _propagate_literal(clause, literals[open1], self.store)
            if isinstance(outcome, Conflict):
                return outcome
            return None
        self._set_watches(clause, open1, open2)
        return None

    def _conflict(self, clause: Clause) -> Conflict:
        antecedents = tuple(
            event_id
            for literal in clause.literals
            if (event_id := self.store.latest_event[literal.var.index])
            is not None
        )
        return Conflict(source=clause, antecedents=antecedents)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def recheck_all(self) -> Optional[Conflict]:
        """Examine every clause (used after backtracking past watches)."""
        for clause in self.clauses:
            conflict = self._examine(clause)
            if conflict is not None:
                return conflict
        return None

    def remove_clause(self, clause: Clause) -> None:
        """Detach a clause from the database and its watch lists."""
        self._detach(clause)
        try:
            self.clauses.remove(clause)
        except ValueError:  # pragma: no cover - defensive
            pass

    #: Learned-clause origins eligible for eviction.  Problem clauses,
    #: static-learning relations and their shifted copies stay.
    _DISPOSABLE_ORIGINS = (
        "conflict",
        "fme-conflict",
        "j-conflict",
        "conflict-shifted",
        "shared",
    )

    def _reason_clauses(self) -> Set[int]:
        """Ids of clauses currently serving as a trail-event reason.

        These are never evicted: while deletion would still be sound
        (conflict analysis references trail events, not clause objects),
        keeping the reason alive preserves the invariant that every
        implied event's justification is inspectable for the lifetime of
        the assignment — long incremental sessions rely on it.
        """
        return {
            id(event.reason)
            for event in self.store.trail
            if isinstance(event.reason, Clause)
        }

    def _disposable(self, include_core: bool = False) -> List[Clause]:
        """Eviction-eligible learned clauses.

        Core-tier ("glue") clauses are excluded unless ``include_core``
        — they are never evicted, but the tier-size and mean-LBD
        accessors still want to see them.
        """
        protected = self._reason_clauses()
        return [
            clause
            for clause in self.clauses
            if clause.learned
            and len(clause.literals) > 1
            and clause.origin in self._DISPOSABLE_ORIGINS
            and (include_core or clause.tier != TIER_CORE)
            and id(clause) not in protected
        ]

    def _assign_tier(self, clause: Clause) -> None:
        """Place a learned clause in its LBD tier at install time.

        An LBD of 0 means "not computed" (e.g. decision-cut clauses);
        such clauses go to the local tier rather than masquerading as
        glue.  Binary clauses are core regardless of recorded LBD —
        they are cheap to keep and as strong as glue.
        """
        if len(clause.literals) <= 2 or (
            0 < clause.lbd <= self.core_lbd_max
        ):
            clause.tier = TIER_CORE
        elif clause.lbd <= self.mid_lbd_max:
            clause.tier = TIER_MID
            clause.activity_mark = clause.activity
        else:
            clause.tier = TIER_LOCAL

    def tier_sizes(self) -> Tuple[int, int, int]:
        """(core, mid, local) sizes of the disposable learned set."""
        core = mid = local = 0
        for clause in self._disposable(include_core=True):
            if clause.tier == TIER_CORE:
                core += 1
            elif clause.tier == TIER_MID:
                mid += 1
            else:
                local += 1
        return core, mid, local

    def mean_lbd(self) -> float:
        """Mean recorded LBD over disposable learned clauses (0.0 when
        none carry one)."""
        total = 0
        count = 0
        for clause in self._disposable(include_core=True):
            if clause.lbd > 0:
                total += clause.lbd
                count += 1
        return total / count if count else 0.0

    def _demote_stale(self, candidates: List[Clause]) -> None:
        """Demote mid-tier clauses whose activity stopped moving.

        Called once per reduction round: a mid clause that sat through
        ``mid_staleness`` consecutive rounds without a single activity
        bump joins the local (evictable) tier.
        """
        for clause in candidates:
            if clause.tier != TIER_MID:
                continue
            if clause.activity > clause.activity_mark:
                clause.activity_mark = clause.activity
                clause.stale_rounds = 0
                continue
            clause.stale_rounds += 1
            if clause.stale_rounds >= self.mid_staleness:
                clause.tier = TIER_LOCAL
                self.clauses_demoted += 1

    #: Eviction order inside the eligible set: local before mid, then
    #: highest LBD first, lowest activity first.
    @staticmethod
    def _evict_key(clause: Clause) -> Tuple[int, int, float]:
        return (-clause.tier, -clause.lbd, clause.activity)

    def _evict(self, candidates: List[Clause], drop_count: int) -> int:
        if drop_count <= 0:
            return 0
        candidates.sort(key=self._evict_key)
        for clause in candidates[:drop_count]:
            self.remove_clause(clause)
        self.clauses_evicted += drop_count
        return drop_count

    def reduce_learned(self, keep_fraction: float = 0.5) -> int:
        """One clause-database reduction round.

        Mid-tier staleness is aged first (stale mid clauses drop to
        local), then the worse ``1 - keep_fraction`` of the *local* tier
        is evicted (highest LBD, then lowest activity).  Core clauses
        and the surviving mid tier are untouched.  Only multi-literal
        conflict-learned clauses are ever candidates: problem clauses,
        static-learning relations and unit facts stay, as does any
        clause currently justifying a trail event.  Deletion is always
        sound (learned clauses are consequences).  Returns the number
        removed.
        """
        candidates = self._disposable()
        self._demote_stale(candidates)
        local = [c for c in candidates if c.tier == TIER_LOCAL]
        if len(local) < 8:
            return 0
        drop_count = int(len(local) * (1.0 - keep_fraction))
        return self._evict(local, drop_count)

    def enforce_cap(self, max_learned: int) -> int:
        """Tiered eviction down to ``max_learned`` evictable (mid +
        local) disposable clauses (0 disables).  Core-tier clauses never
        count toward the cap and are never dropped.  Used by long-lived
        sessions so the clause database cannot drown in dead lemmas as
        frames accumulate.  Returns the number removed."""
        if max_learned <= 0:
            return 0
        candidates = self._disposable()
        overshoot = len(candidates) - max_learned
        if overshoot <= 0:
            return 0
        # Drop down to half the cap so the cap is not re-hit immediately.
        drop_count = min(
            len(candidates), overshoot + max_learned // 2
        )
        return self._evict(candidates, drop_count)

    def __len__(self) -> int:
        return len(self.clauses)
