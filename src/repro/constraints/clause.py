"""Hybrid clauses: disjunctions of Boolean and word literals.

Section 2.1 of the paper: a *hybrid clause* is a disjunction of Boolean
literals and word literals, where a word literal pairs a word variable
with a finite interval.  A positive word literal ``{w, b}`` asserts that
``w`` takes a value in ``b``; a negative literal asserts a value in
``D(w) \\ b``.

Against a monotonically narrowing domain store, literal status is
three-valued and monotone (unassigned can become true or false, and then
never changes), which is what makes watched-literal propagation sound for
hybrid clauses exactly as for Boolean ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SolverError
from repro.intervals import Interval
from repro.constraints.store import Conflict, DomainStore, Event
from repro.constraints.variable import Variable

TRUE = 1
FALSE = 0
UNASSIGNED = -1


@dataclass(frozen=True)
class BoolLit:
    """A Boolean literal: ``var`` (positive) or ``¬var`` (negative)."""

    var: Variable
    positive: bool = True

    def negated(self) -> "BoolLit":
        return BoolLit(self.var, not self.positive)

    def status(self, store: DomainStore) -> int:
        value = store.bool_value(self.var)
        if value is None:
            return UNASSIGNED
        satisfied = bool(value) == self.positive
        return TRUE if satisfied else FALSE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "" if self.positive else "~"
        return f"{prefix}{self.var.name}"


@dataclass(frozen=True)
class WordLit:
    """A word literal ``{var, interval}`` or its negation.

    Positive: true when ``D(var) ⊆ interval``; false when
    ``D(var) ∩ interval = ∅``.  Negative literals are the dual.
    """

    var: Variable
    interval: Interval
    positive: bool = True

    def negated(self) -> "WordLit":
        return WordLit(self.var, self.interval, not self.positive)

    def status(self, store: DomainStore) -> int:
        domain = store.domain(self.var)
        if self.positive:
            if self.interval.contains_interval(domain):
                return TRUE
            if not self.interval.intersects(domain):
                return FALSE
            return UNASSIGNED
        if not self.interval.intersects(domain):
            return TRUE
        if self.interval.contains_interval(domain):
            return FALSE
        return UNASSIGNED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        relation = "in" if self.positive else "notin"
        return f"({self.var.name} {relation} {self.interval})"


Literal = Union[BoolLit, WordLit]


def make_bool_lit(var: Variable, value: int) -> BoolLit:
    """The literal satisfied when ``var == value``."""
    return BoolLit(var, positive=bool(value))


@dataclass(eq=False)
class Clause:
    """A hybrid clause with optional learned-clause bookkeeping."""

    literals: Tuple[Literal, ...]
    learned: bool = False
    #: Provenance tag: "predicate-learning", "conflict", "j-conflict", ...
    origin: str = "problem"
    activity: float = 0.0

    def __post_init__(self) -> None:
        if not self.literals:
            raise SolverError("empty clause constructed directly")
        seen = set()
        unique: List[Literal] = []
        for literal in self.literals:
            key = (
                literal.var.index,
                literal.positive,
                getattr(literal, "interval", None),
            )
            if key not in seen:
                seen.add(key)
                unique.append(literal)
        self.literals = tuple(unique)

    def status(self, store: DomainStore) -> int:
        """TRUE if any literal true, FALSE if all false, else UNASSIGNED."""
        any_unassigned = False
        for literal in self.literals:
            state = literal.status(store)
            if state == TRUE:
                return TRUE
            if state == UNASSIGNED:
                any_unassigned = True
        return UNASSIGNED if any_unassigned else FALSE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " | ".join(repr(literal) for literal in self.literals)
        return f"Clause[{body}]"


def _propagate_literal(
    clause: Clause, literal: Literal, store: DomainStore
) -> object:
    """Make the last unassigned literal of a unit clause true."""
    involved = [lit.var for lit in clause.literals]
    if isinstance(literal, BoolLit):
        return store.assign_bool(
            literal.var, 1 if literal.positive else 0, clause, involved
        )
    if literal.positive:
        return store.narrow(literal.var, literal.interval, clause, involved)
    # Negative word literal: remove the interval where representable.
    remainder = store.domain(literal.var).difference(literal.interval)
    if remainder is None:
        # Domain entirely inside the excluded interval: conflict.
        antecedents = tuple(
            event_id
            for var in involved
            if (event_id := store.latest_event[var.index]) is not None
        )
        return Conflict(source=clause, antecedents=antecedents, var=literal.var)
    return store.narrow(literal.var, remainder, clause, involved)


class ClauseDatabase:
    """Clause storage with two-watched-literal propagation.

    Every clause watches two of its literals; a clause is only examined
    when a watched variable's domain changes.  Because literal status is
    monotone under narrowing, the standard invariant (watch two non-false
    literals, or the clause is unit/conflicting) carries over unchanged
    from Boolean CDCL.
    """

    def __init__(self, store: DomainStore):
        self.store = store
        self.clauses: List[Clause] = []
        #: var index -> list of (clause, watch position) pairs.
        self.watches: Dict[int, List[Tuple[Clause, int]]] = {}
        self._watch_positions: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Clause installation
    # ------------------------------------------------------------------
    def add_clause(self, clause: Clause) -> Optional[Conflict]:
        """Install a clause; may immediately propagate or conflict.

        The clause may be unit or even false under the current trail
        (learned clauses usually are); the caller must then backtrack
        and re-propagate as appropriate.
        """
        self.clauses.append(clause)
        count = len(clause.literals)
        self._set_watches(clause, 0, min(1, count - 1))
        return self._examine(clause)

    def _set_watches(self, clause: Clause, first: int, second: int) -> None:
        """(Re)point the clause's watches at literal positions."""
        old = self._watch_positions.get(id(clause))
        if old is not None:
            for position in set(old):
                var = clause.literals[position].var
                entries = self.watches.get(var.index, [])
                for i, (watched_clause, watched_position) in enumerate(entries):
                    if watched_clause is clause and watched_position == position:
                        entries.pop(i)
                        break
        self._watch_positions[id(clause)] = (first, second)
        for position in {first, second}:
            var = clause.literals[position].var
            self.watches.setdefault(var.index, []).append((clause, position))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def on_var_event(self, var: Variable) -> Optional[Conflict]:
        """Re-examine all clauses watching ``var``; returns a conflict or None."""
        entries = self.watches.get(var.index)
        if not entries:
            return None
        for clause, _position in list(entries):
            conflict = self._examine(clause)
            if conflict is not None:
                return conflict
        return None

    def _examine(self, clause: Clause) -> Optional[Conflict]:
        """Examine one clause: satisfied, unit, conflicting, or rewatch.

        Fast path first: while both watched literals are non-false (or
        either is true) the clause cannot be unit or conflicting, so the
        full literal scan only runs when a watch has actually been
        falsified — the textbook two-watched-literal argument.
        """
        first, second = self._watch_positions[id(clause)]
        literals = clause.literals
        first_status = literals[first].status(self.store)
        if first_status == TRUE:
            return None
        second_status = (
            literals[second].status(self.store) if second != first else first_status
        )
        if second_status == TRUE:
            return None
        if (
            first != second
            and first_status == UNASSIGNED
            and second_status == UNASSIGNED
        ):
            return None
        statuses = [literal.status(self.store) for literal in clause.literals]
        if TRUE in statuses:
            # Park a watch on the satisfying literal so subsequent visits
            # take the fast path while it stays true.
            true_position = statuses.index(TRUE)
            other = next(
                (
                    i
                    for i, s in enumerate(statuses)
                    if s != FALSE and i != true_position
                ),
                true_position,
            )
            self._set_watches(clause, true_position, other)
            return None
        unassigned = [i for i, s in enumerate(statuses) if s == UNASSIGNED]
        if not unassigned:
            return self._conflict(clause)
        if len(unassigned) == 1:
            outcome = _propagate_literal(
                clause, clause.literals[unassigned[0]], self.store
            )
            if isinstance(outcome, Conflict):
                return outcome
            return None
        # Two or more open literals: watch two of them so the clause is
        # revisited no later than when one becomes false.
        self._set_watches(clause, unassigned[0], unassigned[1])
        return None

    def _conflict(self, clause: Clause) -> Conflict:
        antecedents = tuple(
            event_id
            for literal in clause.literals
            if (event_id := self.store.latest_event[literal.var.index])
            is not None
        )
        return Conflict(source=clause, antecedents=antecedents)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def recheck_all(self) -> Optional[Conflict]:
        """Examine every clause (used after backtracking past watches)."""
        for clause in self.clauses:
            conflict = self._examine(clause)
            if conflict is not None:
                return conflict
        return None

    def remove_clause(self, clause: Clause) -> None:
        """Detach a clause from the database and its watch lists."""
        positions = self._watch_positions.pop(id(clause), None)
        if positions is not None:
            for position in set(positions):
                var = clause.literals[position].var
                entries = self.watches.get(var.index, [])
                for i, (watched, watched_position) in enumerate(entries):
                    if watched is clause and watched_position == position:
                        entries.pop(i)
                        break
        try:
            self.clauses.remove(clause)
        except ValueError:  # pragma: no cover - defensive
            pass

    def reduce_learned(self, keep_fraction: float = 0.5) -> int:
        """Drop the least active disposable learned clauses.

        Only multi-literal conflict-learned clauses are candidates:
        problem clauses, static-learning relations and unit facts stay.
        Deletion is always sound (learned clauses are consequences), and
        safe mid-search — conflict analysis references trail events, not
        clause objects, so a deleted clause serving as a ``reason`` tag
        is simply garbage-collected later.  Returns the number removed.
        """
        candidates = [
            clause
            for clause in self.clauses
            if clause.learned
            and len(clause.literals) > 1
            and clause.origin in ("conflict", "fme-conflict", "j-conflict")
        ]
        if len(candidates) < 8:
            return 0
        candidates.sort(key=lambda clause: clause.activity)
        drop_count = int(len(candidates) * (1.0 - keep_fraction))
        for clause in candidates[:drop_count]:
            self.remove_clause(clause)
        return drop_count

    def __len__(self) -> int:
        return len(self.clauses)
