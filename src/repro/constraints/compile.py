"""Compilation of a combinational circuit into a constraint system.

Every net becomes a solver variable with its full width domain; every node
becomes a propagator.  Datapath operators with modular semantics (add,
sub, multiplication by constant, shifts, extract) introduce auxiliary
carry/remainder variables so that every datapath constraint is a *linear
integer equality* — the paper's Section 2.1 treatment ("non-linear
operations ... are modeled as arithmetic constraints by adding auxiliary
variables").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import UnsupportedOperationError
from repro.intervals import Interval
from repro.constraints.propagators import (
    BoolGateProp,
    ComparatorProp,
    LinearEqProp,
    MuxProp,
    Propagator,
)
from repro.constraints.variable import Variable, VarOrigin
from repro.rtl.circuit import Circuit, Net, Node
from repro.rtl.types import BOOLEAN_KINDS, PREDICATE_KINDS, OpKind


@dataclass
class CompiledSystem:
    """The solver-facing form of a circuit."""

    circuit: Circuit
    variables: List[Variable] = field(default_factory=list)
    propagators: List[Propagator] = field(default_factory=list)
    #: net index -> variable backing that net.
    var_of_net: Dict[int, Variable] = field(default_factory=dict)
    #: circuit node index -> the propagator compiled from it.
    prop_of_node: Dict[int, Propagator] = field(default_factory=dict)
    #: auxiliary variables introduced during compilation.
    aux_variables: List[Variable] = field(default_factory=list)

    def var(self, net: Net) -> Variable:
        """The solver variable backing a circuit net."""
        return self.var_of_net[net.index]

    def var_by_name(self, name: str) -> Variable:
        """Variable backing the net (or output alias) with this name."""
        if name in self.circuit.outputs:
            return self.var(self.circuit.outputs[name])
        return self.var(self.circuit.net(name))

    @property
    def boolean_net_vars(self) -> List[Variable]:
        """Boolean variables backed by circuit nets (decision candidates)."""
        return [
            var
            for var in self.variables
            if var.is_bool and var.origin is VarOrigin.NET
        ]


@dataclass
class CompiledExtension:
    """Variables and propagators appended by :func:`extend_compiled`."""

    variables: List[Variable]
    propagators: List[Propagator]


class _Compiler:
    def __init__(
        self,
        circuit: Circuit,
        mux_select_implication: bool = False,
        system: Optional[CompiledSystem] = None,
    ):
        if system is None:
            circuit.validate()
            if not circuit.is_combinational:
                raise UnsupportedOperationError(
                    "only combinational circuits can be compiled; unroll "
                    "sequential circuits with repro.bmc first"
                )
        self.circuit = circuit
        self.mux_select_implication = mux_select_implication
        self.system = (
            system if system is not None else CompiledSystem(circuit=circuit)
        )

    # ------------------------------------------------------------------
    def _new_var(
        self,
        name: str,
        width: int,
        origin: VarOrigin,
        net_index: Optional[int] = None,
        domain: Optional[Interval] = None,
    ) -> Variable:
        var = Variable(
            index=len(self.system.variables),
            name=name,
            width=width,
            origin=origin,
            net_index=net_index,
            initial_domain=domain,  # type: ignore[arg-type]
        )
        self.system.variables.append(var)
        if origin is VarOrigin.AUXILIARY:
            self.system.aux_variables.append(var)
        return var

    def _aux(self, name: str, lo: int, hi: int) -> Variable:
        width = max(1, (hi if hi > 0 else 1).bit_length())
        return self._new_var(
            name, width, VarOrigin.AUXILIARY, domain=Interval(lo, hi)
        )

    def _add_prop(self, propagator: Propagator, node: Node) -> None:
        propagator.node_index = node.index
        self.system.propagators.append(propagator)
        self.system.prop_of_node[node.index] = propagator

    def _linear(
        self,
        node: Node,
        coeffs: List[int],
        variables: List[Variable],
        constant: int,
        label: str,
    ) -> None:
        self._add_prop(LinearEqProp(coeffs, variables, constant, label), node)

    # ------------------------------------------------------------------
    def compile(self) -> CompiledSystem:
        for node in self.circuit.topological_nodes():
            self._compile_node(node)
        return self.system

    def _compile_node(self, node: Node) -> None:
        net = node.output
        kind = node.kind
        if kind is OpKind.CONST:
            self.system.var_of_net[net.index] = self._new_var(
                net.name,
                net.width,
                VarOrigin.NET,
                net.index,
                Interval.point(node.const_value or 0),
            )
            return
        out = self._new_var(net.name, net.width, VarOrigin.NET, net.index)
        self.system.var_of_net[net.index] = out
        if kind is OpKind.INPUT:
            return
        if kind is OpKind.REG:
            raise UnsupportedOperationError(
                "registers cannot be compiled; unroll the circuit first"
            )
        operands = [self.system.var_of_net[n.index] for n in node.operands]

        if kind in BOOLEAN_KINDS:
            self._add_prop(BoolGateProp(kind, out, operands), node)
        elif kind in PREDICATE_KINDS:
            self._add_prop(
                ComparatorProp(out, kind, operands[0], operands[1]), node
            )
        elif kind is OpKind.MUX:
            self._add_prop(
                MuxProp(
                    out,
                    operands[0],
                    operands[1],
                    operands[2],
                    imply_select=self.mux_select_implication,
                ),
                node,
            )
        elif kind is OpKind.ADD:
            carry = self._aux(f"{net.name}__carry", 0, 1)
            modulus = 1 << net.width
            # a + b == out + 2**w * carry
            self._linear(
                node,
                [1, 1, -1, -modulus],
                [operands[0], operands[1], out, carry],
                0,
                "add",
            )
        elif kind is OpKind.SUB:
            borrow = self._aux(f"{net.name}__borrow", 0, 1)
            modulus = 1 << net.width
            # a - b == out - 2**w * borrow
            self._linear(
                node,
                [1, -1, -1, modulus],
                [operands[0], operands[1], out, borrow],
                0,
                "sub",
            )
        elif kind in (OpKind.MULC, OpKind.SHL):
            factor = (
                node.factor
                if kind is OpKind.MULC
                else 1 << (node.shift_amount or 0)
            )
            assert factor is not None
            modulus = 1 << net.width
            if factor == 0:
                self._linear(node, [1], [out], 0, "mulc0")
                return
            overflow_max = (factor * (modulus - 1)) // modulus
            if overflow_max == 0:
                # k * a == out (no wrap possible)
                self._linear(
                    node, [factor, -1], [operands[0], out], 0, "mulc"
                )
            else:
                quotient = self._aux(f"{net.name}__ovf", 0, overflow_max)
                # k * a == out + 2**w * q
                self._linear(
                    node,
                    [factor, -1, -modulus],
                    [operands[0], out, quotient],
                    0,
                    "mulc",
                )
        elif kind is OpKind.SHR:
            amount = node.shift_amount or 0
            if amount == 0:
                self._linear(node, [1, -1], [operands[0], out], 0, "shr0")
                return
            scale = 1 << amount
            remainder = self._aux(f"{net.name}__rem", 0, scale - 1)
            # a == 2**k * out + r
            self._linear(
                node,
                [1, -scale, -1],
                [operands[0], out, remainder],
                0,
                "shr",
            )
        elif kind is OpKind.CONCAT:
            lo_width = node.operands[1].width
            # hi * 2**lo_width + lo == out
            self._linear(
                node,
                [1 << lo_width, 1, -1],
                [operands[0], operands[1], out],
                0,
                "concat",
            )
        elif kind is OpKind.EXTRACT:
            self._compile_extract(node, operands[0], out)
        elif kind is OpKind.ZEXT:
            self._linear(node, [1, -1], [operands[0], out], 0, "zext")
        else:  # pragma: no cover - new kinds must be handled explicitly
            raise UnsupportedOperationError(f"cannot compile {kind.value}")

    def _compile_extract(self, node: Node, source: Variable, out: Variable) -> None:
        """``out = source[hi_bit : lo_bit]`` via the auxiliary decomposition
        ``source == hp * 2**(hi+1) + out * 2**lo + lp``."""
        lo_bit = node.extract_lo or 0
        hi_bit = node.extract_hi
        assert hi_bit is not None
        source_width = node.operands[0].width
        coeffs: List[int] = [1, -(1 << lo_bit)]
        variables: List[Variable] = [source, out]
        high_width = source_width - hi_bit - 1
        if high_width > 0:
            high_part = self._aux(
                f"{node.output.name}__hi", 0, (1 << high_width) - 1
            )
            coeffs.append(-(1 << (hi_bit + 1)))
            variables.append(high_part)
        if lo_bit > 0:
            low_part = self._aux(
                f"{node.output.name}__lo", 0, (1 << lo_bit) - 1
            )
            coeffs.append(-1)
            variables.append(low_part)
        self._linear(node, coeffs, variables, 0, "extract")


def compile_circuit(
    circuit: Circuit, mux_select_implication: bool = False
) -> CompiledSystem:
    """Compile a combinational circuit into variables and propagators.

    ``mux_select_implication`` enables the strengthened mux backward rule
    (see :class:`repro.constraints.propagators.MuxProp`).
    """
    return _Compiler(circuit, mux_select_implication).compile()


def extend_compiled(
    system: CompiledSystem,
    nodes: List[Node],
    mux_select_implication: bool = False,
) -> CompiledExtension:
    """Compile a node suffix into an existing system (frame extension).

    ``nodes`` must be new nodes of ``system.circuit`` in dependency order
    whose operands are either earlier nodes in the list or nets already
    compiled — exactly what the incremental unroller hands back.  The
    appended variables keep the system's dense index space, so the
    existing domain store / engine / activity order can absorb them via
    their own ``add``/``extend`` hooks without recompiling frames 0..t.
    """
    compiler = _Compiler(
        system.circuit, mux_select_implication, system=system
    )
    var_mark = len(system.variables)
    prop_mark = len(system.propagators)
    for node in nodes:
        if node.output.index in system.var_of_net:
            raise UnsupportedOperationError(
                f"node {node.index} ({node.output.name}) is already compiled"
            )
        compiler._compile_node(node)
    return CompiledExtension(
        variables=system.variables[var_mark:],
        propagators=system.propagators[prop_mark:],
    )
