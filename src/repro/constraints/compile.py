"""Compilation of a combinational circuit into a constraint system.

Every net becomes a solver variable with its full width domain; every node
becomes a propagator.  Datapath operators with modular semantics (add,
sub, multiplication by constant, shifts, extract) introduce auxiliary
carry/remainder variables so that every datapath constraint is a *linear
integer equality* — the paper's Section 2.1 treatment ("non-linear
operations ... are modeled as arithmetic constraints by adding auxiliary
variables").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import UnsupportedOperationError
from repro.intervals import Interval, register_cache_reset
from repro.intervals import interval as _interval_mod
from repro.constraints.propagators import (
    BoolGateProp,
    ComparatorProp,
    LinearEqProp,
    MuxProp,
    Propagator,
)
from repro.constraints.store import Conflict, Event
from repro.constraints.variable import Variable, VarOrigin
from repro.rtl.circuit import Circuit, Net, Node
from repro.rtl.types import BOOLEAN_KINDS, PREDICATE_KINDS, OpKind


@dataclass
class CompiledSystem:
    """The solver-facing form of a circuit."""

    circuit: Circuit
    variables: List[Variable] = field(default_factory=list)
    propagators: List[Propagator] = field(default_factory=list)
    #: net index -> variable backing that net.
    var_of_net: Dict[int, Variable] = field(default_factory=dict)
    #: circuit node index -> the propagator compiled from it.
    prop_of_node: Dict[int, Propagator] = field(default_factory=dict)
    #: auxiliary variables introduced during compilation.
    aux_variables: List[Variable] = field(default_factory=list)

    def var(self, net: Net) -> Variable:
        """The solver variable backing a circuit net."""
        return self.var_of_net[net.index]

    def var_by_name(self, name: str) -> Variable:
        """Variable backing the net (or output alias) with this name."""
        if name in self.circuit.outputs:
            return self.var(self.circuit.outputs[name])
        return self.var(self.circuit.net(name))

    @property
    def boolean_net_vars(self) -> List[Variable]:
        """Boolean variables backed by circuit nets (decision candidates)."""
        return [
            var
            for var in self.variables
            if var.is_bool and var.origin is VarOrigin.NET
        ]


@dataclass
class CompiledExtension:
    """Variables and propagators appended by :func:`extend_compiled`."""

    variables: List[Variable]
    propagators: List[Propagator]


class _Compiler:
    def __init__(
        self,
        circuit: Circuit,
        mux_select_implication: bool = False,
        system: Optional[CompiledSystem] = None,
    ):
        if system is None:
            circuit.validate()
            if not circuit.is_combinational:
                raise UnsupportedOperationError(
                    "only combinational circuits can be compiled; unroll "
                    "sequential circuits with repro.bmc first"
                )
        self.circuit = circuit
        self.mux_select_implication = mux_select_implication
        self.system = (
            system if system is not None else CompiledSystem(circuit=circuit)
        )

    # ------------------------------------------------------------------
    def _new_var(
        self,
        name: str,
        width: int,
        origin: VarOrigin,
        net_index: Optional[int] = None,
        domain: Optional[Interval] = None,
    ) -> Variable:
        var = Variable(
            index=len(self.system.variables),
            name=name,
            width=width,
            origin=origin,
            net_index=net_index,
            initial_domain=domain,  # type: ignore[arg-type]
        )
        self.system.variables.append(var)
        if origin is VarOrigin.AUXILIARY:
            self.system.aux_variables.append(var)
        return var

    def _aux(self, name: str, lo: int, hi: int) -> Variable:
        width = max(1, (hi if hi > 0 else 1).bit_length())
        return self._new_var(
            name, width, VarOrigin.AUXILIARY, domain=Interval(lo, hi)
        )

    def _add_prop(self, propagator: Propagator, node: Node) -> None:
        propagator.node_index = node.index
        self.system.propagators.append(propagator)
        self.system.prop_of_node[node.index] = propagator

    def _linear(
        self,
        node: Node,
        coeffs: List[int],
        variables: List[Variable],
        constant: int,
        label: str,
    ) -> None:
        self._add_prop(LinearEqProp(coeffs, variables, constant, label), node)

    # ------------------------------------------------------------------
    def compile(self) -> CompiledSystem:
        for node in self.circuit.topological_nodes():
            self._compile_node(node)
        return self.system

    def _compile_node(self, node: Node) -> None:
        net = node.output
        kind = node.kind
        if kind is OpKind.CONST:
            self.system.var_of_net[net.index] = self._new_var(
                net.name,
                net.width,
                VarOrigin.NET,
                net.index,
                Interval.point(node.const_value or 0),
            )
            return
        out = self._new_var(net.name, net.width, VarOrigin.NET, net.index)
        self.system.var_of_net[net.index] = out
        if kind is OpKind.INPUT:
            return
        if kind is OpKind.REG:
            raise UnsupportedOperationError(
                "registers cannot be compiled; unroll the circuit first"
            )
        operands = [self.system.var_of_net[n.index] for n in node.operands]

        if kind in BOOLEAN_KINDS:
            self._add_prop(BoolGateProp(kind, out, operands), node)
        elif kind in PREDICATE_KINDS:
            self._add_prop(
                ComparatorProp(out, kind, operands[0], operands[1]), node
            )
        elif kind is OpKind.MUX:
            self._add_prop(
                MuxProp(
                    out,
                    operands[0],
                    operands[1],
                    operands[2],
                    imply_select=self.mux_select_implication,
                ),
                node,
            )
        elif kind is OpKind.ADD:
            carry = self._aux(f"{net.name}__carry", 0, 1)
            modulus = 1 << net.width
            # a + b == out + 2**w * carry
            self._linear(
                node,
                [1, 1, -1, -modulus],
                [operands[0], operands[1], out, carry],
                0,
                "add",
            )
        elif kind is OpKind.SUB:
            borrow = self._aux(f"{net.name}__borrow", 0, 1)
            modulus = 1 << net.width
            # a - b == out - 2**w * borrow
            self._linear(
                node,
                [1, -1, -1, modulus],
                [operands[0], operands[1], out, borrow],
                0,
                "sub",
            )
        elif kind in (OpKind.MULC, OpKind.SHL):
            factor = (
                node.factor
                if kind is OpKind.MULC
                else 1 << (node.shift_amount or 0)
            )
            assert factor is not None
            modulus = 1 << net.width
            if factor == 0:
                self._linear(node, [1], [out], 0, "mulc0")
                return
            overflow_max = (factor * (modulus - 1)) // modulus
            if overflow_max == 0:
                # k * a == out (no wrap possible)
                self._linear(
                    node, [factor, -1], [operands[0], out], 0, "mulc"
                )
            else:
                quotient = self._aux(f"{net.name}__ovf", 0, overflow_max)
                # k * a == out + 2**w * q
                self._linear(
                    node,
                    [factor, -1, -modulus],
                    [operands[0], out, quotient],
                    0,
                    "mulc",
                )
        elif kind is OpKind.SHR:
            amount = node.shift_amount or 0
            if amount == 0:
                self._linear(node, [1, -1], [operands[0], out], 0, "shr0")
                return
            scale = 1 << amount
            remainder = self._aux(f"{net.name}__rem", 0, scale - 1)
            # a == 2**k * out + r
            self._linear(
                node,
                [1, -scale, -1],
                [operands[0], out, remainder],
                0,
                "shr",
            )
        elif kind is OpKind.CONCAT:
            lo_width = node.operands[1].width
            # hi * 2**lo_width + lo == out
            self._linear(
                node,
                [1 << lo_width, 1, -1],
                [operands[0], operands[1], out],
                0,
                "concat",
            )
        elif kind is OpKind.EXTRACT:
            self._compile_extract(node, operands[0], out)
        elif kind is OpKind.ZEXT:
            self._linear(node, [1, -1], [operands[0], out], 0, "zext")
        else:  # pragma: no cover - new kinds must be handled explicitly
            raise UnsupportedOperationError(f"cannot compile {kind.value}")

    def _compile_extract(self, node: Node, source: Variable, out: Variable) -> None:
        """``out = source[hi_bit : lo_bit]`` via the auxiliary decomposition
        ``source == hp * 2**(hi+1) + out * 2**lo + lp``."""
        lo_bit = node.extract_lo or 0
        hi_bit = node.extract_hi
        assert hi_bit is not None
        source_width = node.operands[0].width
        coeffs: List[int] = [1, -(1 << lo_bit)]
        variables: List[Variable] = [source, out]
        high_width = source_width - hi_bit - 1
        if high_width > 0:
            high_part = self._aux(
                f"{node.output.name}__hi", 0, (1 << high_width) - 1
            )
            coeffs.append(-(1 << (hi_bit + 1)))
            variables.append(high_part)
        if lo_bit > 0:
            low_part = self._aux(
                f"{node.output.name}__lo", 0, (1 << lo_bit) - 1
            )
            coeffs.append(-1)
            variables.append(low_part)
        self._linear(node, coeffs, variables, 0, "extract")


def compile_circuit(
    circuit: Circuit, mux_select_implication: bool = False
) -> CompiledSystem:
    """Compile a combinational circuit into variables and propagators.

    ``mux_select_implication`` enables the strengthened mux backward rule
    (see :class:`repro.constraints.propagators.MuxProp`).
    """
    return _Compiler(circuit, mux_select_implication).compile()


# ---------------------------------------------------------------------------
# Specialized propagator kernels (engine_impl="specialized"/"vectorized")
# ---------------------------------------------------------------------------
# A kernel is a closure ``kernel(store) -> Optional[Conflict]`` that is a
# *bit-for-bit transcription* of one propagator family's ``propagate``:
# same narrow_bounds calls in the same order with the same reason and
# involved tuple, same conflict objects with the same antecedent
# ordering.  What the kernels eliminate is pure interpretation overhead —
# bound-method dispatch, Interval object churn, per-call attribute
# lookups — never behaviour.  The reference ``propagate`` methods in
# :mod:`repro.constraints.propagators` (and the narrowing rules in
# :mod:`repro.intervals.narrowing`) are the source of truth: any change
# there must be mirrored here, and the differential engine sweep in
# ``tests/constraints/test_differential.py`` enforces the equivalence.

#: Largest linear-constraint arity that gets an unrolled kernel.
_LINEAR_MAX_ARITY = 4

_CMP_CODES = {OpKind.EQ: 0, OpKind.NE: 1, OpKind.LT: 2, OpKind.LE: 3}

#: Classification plans cached by netlist signature: signature -> plan.
#: A plan is index-free (family + cohort key per position), so identical
#: node shapes — a re-unrolled BMC frame, a portfolio ProblemSpec
#: rebuild — share one classification pass.
_KERNEL_PLAN_CACHE: Dict[str, Tuple] = {}
_KERNEL_PLAN_STATS = [0, 0]  # [hits, misses]
#: exec()-generated kernel factories keyed by plan entry.
_KERNEL_FACTORIES: Dict[Tuple, Callable] = {}


def kernel_plan_stats() -> Tuple[int, int]:
    """Plan-cache counters as ``(hits, misses)`` since the last reset."""
    return _KERNEL_PLAN_STATS[0], _KERNEL_PLAN_STATS[1]


def clear_kernel_caches() -> None:
    """Empty the plan cache, codegen memo and counters.

    Registered with :func:`repro.intervals.reset_interval_cache` so
    cache-hit statistics are execution-mode independent: a warm inline
    process and a fresh pool worker report the same numbers.
    """
    _KERNEL_PLAN_CACHE.clear()
    _KERNEL_PLAN_STATS[0] = 0
    _KERNEL_PLAN_STATS[1] = 0
    _KERNEL_FACTORIES.clear()


register_cache_reset(clear_kernel_caches)


def netlist_signature(nodes: Sequence[Node], variant: str = "") -> str:
    """Index-normalized structural hash of a node list (plan-cache key).

    Net indices are taken relative to the first node's output so that
    identically shaped node lists at different index offsets — the
    successive frames appended by the incremental BMC unroller — hash
    equal and share one kernel plan.  The signature captures everything
    classification depends on (operator kind, widths, constants, factor
    and shift parameters, operand aliasing pattern): equal signatures
    imply equal plans by construction.  ``variant`` folds in compilation
    flags that change classification (``mux_select_implication``).
    """
    digest = hashlib.sha1(variant.encode())
    base: Optional[int] = None
    for node in nodes:
        if base is None:
            base = node.output.index
        digest.update(
            repr(
                (
                    node.kind.value,
                    node.output.index - base,
                    node.output.width,
                    tuple(
                        (op.index - base, op.width) for op in node.operands
                    ),
                    node.const_value,
                    node.factor,
                    node.shift_amount,
                    node.extract_lo,
                    node.extract_hi,
                )
            ).encode()
        )
    return digest.hexdigest()


def classify_propagator(prop: Propagator) -> Optional[Tuple]:
    """The kernel-plan entry for one propagator (None = no kernel).

    Exact-type checks, not isinstance: a subclass overriding
    ``propagate`` must keep its own implementation.
    """
    cls = type(prop)
    if cls is LinearEqProp:
        count = len(prop.coeffs)
        if 1 <= count <= _LINEAR_MAX_ARITY:
            return (
                "lin",
                count,
                tuple(1 if c > 0 else -1 for c in prop.coeffs),
            )
        return None
    if cls is ComparatorProp:
        return ("cmp", _CMP_CODES[prop.kind])
    if cls is MuxProp:
        if prop.imply_select:
            # The recursive strengthened backward rule stays on the
            # reference path (ablation configuration, never hot).
            return None
        return ("mux",)
    if cls is BoolGateProp:
        kind = prop.kind
        if kind is OpKind.NOT or kind is OpKind.BUF:
            return ("g1",)
        if kind is OpKind.XOR or kind is OpKind.XNOR:
            return ("gx",)
        return ("gao",)
    return None


# -- generated-source building blocks ---------------------------------------
#
# Every kernel family below is exec()-generated from a source template.
# The template inlines the body of :meth:`DomainStore.narrow_bounds`
# (meet, antecedent collection, conflict build, event-kind bits, trail
# append) directly at each narrowing site, with the reason and involved
# tuple pre-resolved to index tuples at factory time and the store's
# bound arrays captured in the closure.  This removes the per-narrowing
# call chain (narrow_bounds -> _antecedents_for -> Event(**kwargs))
# while producing the exact same trail: same Event field values in the
# same order, same Conflict objects with the same antecedent ordering,
# same interval-cache and narrowing counters.


def _narrow_block(
    ind: str, var: str, vi: str, oth: str, kb: str, nlo: str, nhi: str
) -> str:
    """Source lines inlining ``store.narrow_bounds(var, nlo, nhi, prop,
    variables)`` plus the caller's conflict check.

    A statement-for-statement transcription of
    :meth:`~repro.constraints.store.DomainStore.narrow_bounds` with
    ``reason=prop`` and ``involved=prop.variables`` pre-resolved:
    ``oth`` names the tuple of the *other* involved variables' indices
    (``prop.variables`` order, identity-skipping the target exactly like
    ``_antecedents_for``) and ``kb`` the EVENT_FIXED|EVENT_BOOL bits of
    the target.  ``nlo``/``nhi`` must be plain local names — they are
    evaluated twice.
    """
    return f"""\
{ind}cl = lo[{vi}]
{ind}ch = hi[{vi}]
{ind}ml = {nlo} if {nlo} > cl else cl
{ind}mh = {nhi} if {nhi} < ch else ch
{ind}if ml != cl or mh != ch:
{ind}    prev = latest[{vi}]
{ind}    ante = [] if prev is None else [prev]
{ind}    for _j in {oth}:
{ind}        _a = latest[_j]
{ind}        if _a is not None:
{ind}            ante.append(_a)
{ind}    ante = tuple(ante)
{ind}    if ml > mh:
{ind}        return Conflict(prop, ante, {var})
{ind}    kinds = 1 if ml > cl else 0
{ind}    if mh < ch:
{ind}        kinds |= 2
{ind}    if ml == mh:
{ind}        kinds |= {kb}
{ind}    iv = _cget((ml, mh))
{ind}    if iv is None:
{ind}        iv = _make(ml, mh)
{ind}    else:
{ind}        _chits[0] += 1
{ind}    eid = len(trail)
{ind}    trail.append(Event(eid, {var}, domains[{vi}], iv, \
store.decision_level, prop, ante, kinds, prev))
{ind}    store.narrowings += 1
{ind}    domains[{vi}] = iv
{ind}    lo[{vi}] = ml
{ind}    hi[{vi}] = mh
{ind}    latest[{vi}] = eid
"""


def _conflict_block(ind: str, var: str) -> str:
    """Propagator-built conflict: latest events in ``variables`` order
    (the transcription of the reference ``_latest_conflict`` helper)."""
    return f"""\
{ind}ante = []
{ind}for _j in all_idx:
{ind}    _a = latest[_j]
{ind}    if _a is not None:
{ind}        ante.append(_a)
{ind}return Conflict(prop, tuple(ante), {var})
"""


#: Shared factory head: resolves the involved-variable index tuples and
#: event-kind constants and captures the store's bound arrays.  The
#: arrays are stable for the store's lifetime (``add_variables`` and
#: ``backtrack_to`` mutate them in place), so kernels skip the per-call
#: attribute loads; the ``_store`` call argument is kept only for
#: signature compatibility with the bound-method fallback kernels.
_FACTORY_HEAD = """\
def factory(prop, store):
    variables = prop.variables
    all_idx = tuple(v.index for v in variables)
    lo = store.lo
    hi = store.hi
    trail = store.trail
    domains = store.domains
    latest = store.latest_event

    def _oth(target):
        return tuple(v.index for v in variables if v is not target)

    def _kb(target):
        return 12 if target.is_bool else 4

"""


# -- comparator sources -----------------------------------------------------
#: Decided-predicate inference per comparator code, mirroring the
#: reference ``_decided`` logic (EQ / NE / LT / LE).
_CMP_DECIDED = {
    0: [
        "if xl == xh and yl == yh:",
        "    value = 1 if xl == yl else 0",
        "elif xh < yl or yh < xl:",
        "    value = 0",
        "else:",
        "    return None",
    ],
    1: [
        "if xl == xh and yl == yh:",
        "    value = 1 if xl != yl else 0",
        "elif xh < yl or yh < xl:",
        "    value = 1",
        "else:",
        "    return None",
    ],
    2: [
        "if xh < yl:",
        "    value = 1",
        "elif xl >= yh:",
        "    value = 0",
        "else:",
        "    return None",
    ],
    3: [
        "if xh <= yl:",
        "    value = 1",
        "elif xl > yh:",
        "    value = 0",
        "else:",
        "    return None",
    ],
}


def _cmp_apply_eq(ind: str) -> str:
    """Apply ``x == y`` (narrow_eq) to the operands."""
    return (
        f"{ind}ml0 = xl if xl >= yl else yl\n"
        f"{ind}mh0 = xh if xh <= yh else yh\n"
        f"{ind}if ml0 > mh0:\n"
        + _conflict_block(ind + "    ", "pred")
        + f"{ind}if ml0 != xl or mh0 != xh:\n"
        + _narrow_block(ind + "    ", "x", "xi", "oth_x", "kb_x", "ml0", "mh0")
        + f"{ind}if ml0 != yl or mh0 != yh:\n"
        + _narrow_block(ind + "    ", "y", "yi", "oth_y", "kb_y", "ml0", "mh0")
        + f"{ind}return None\n"
    )


def _cmp_apply_ne(ind: str) -> str:
    """Apply ``x != y`` (narrow_ne, including Interval.difference)."""
    return (
        f"{ind}nxl = xl\n"
        f"{ind}nxh = xh\n"
        f"{ind}nyl = yl\n"
        f"{ind}nyh = yh\n"
        f"{ind}if yl == yh and xl <= yl <= xh:\n"
        f"{ind}    if xl == xh:\n"
        + _conflict_block(ind + "        ", "pred")
        + f"{ind}    if yl == xl:\n"
        f"{ind}        nxl = yl + 1\n"
        f"{ind}    elif yl == xh:\n"
        f"{ind}        nxh = yl - 1\n"
        f"{ind}if xl == xh and yl <= xl <= yh:\n"
        f"{ind}    if xl == yl:\n"
        f"{ind}        nyl = xl + 1\n"
        f"{ind}    elif xl == yh:\n"
        f"{ind}        nyh = xl - 1\n"
        f"{ind}if nxl == nxh and nyl == nyh and nxl == nyl:\n"
        + _conflict_block(ind + "    ", "pred")
        + f"{ind}if nxl != xl or nxh != xh:\n"
        + _narrow_block(ind + "    ", "x", "xi", "oth_x", "kb_x", "nxl", "nxh")
        + f"{ind}if nyl != yl or nyh != yh:\n"
        + _narrow_block(ind + "    ", "y", "yi", "oth_y", "kb_y", "nyl", "nyh")
        + f"{ind}return None\n"
    )


def _cmp_apply_lt(ind: str) -> str:
    """Apply ``x < y`` (narrow_lt)."""
    return (
        f"{ind}nxh0 = xh if xh <= yh - 1 else yh - 1\n"
        f"{ind}nyl0 = yl if yl >= xl + 1 else xl + 1\n"
        f"{ind}if nxh0 < xl or nyl0 > yh:\n"
        + _conflict_block(ind + "    ", "pred")
        + f"{ind}if nxh0 != xh:\n"
        + _narrow_block(ind + "    ", "x", "xi", "oth_x", "kb_x", "xl", "nxh0")
        + f"{ind}if nyl0 != yl:\n"
        + _narrow_block(ind + "    ", "y", "yi", "oth_y", "kb_y", "nyl0", "yh")
        + f"{ind}return None\n"
    )


def _cmp_apply_ge(ind: str) -> str:
    """Apply ``not(x < y)``, i.e. ``y <= x`` (narrow_le swapped)."""
    return (
        f"{ind}nyh0 = yh if yh <= xh else xh\n"
        f"{ind}nxl0 = xl if xl >= yl else yl\n"
        f"{ind}if nyh0 < yl or nxl0 > xh:\n"
        + _conflict_block(ind + "    ", "pred")
        + f"{ind}if nxl0 != xl:\n"
        + _narrow_block(ind + "    ", "x", "xi", "oth_x", "kb_x", "nxl0", "xh")
        + f"{ind}if nyh0 != yh:\n"
        + _narrow_block(ind + "    ", "y", "yi", "oth_y", "kb_y", "yl", "nyh0")
        + f"{ind}return None\n"
    )


def _cmp_apply_le(ind: str) -> str:
    """Apply ``x <= y`` (narrow_le)."""
    return (
        f"{ind}nxh0 = xh if xh <= yh else yh\n"
        f"{ind}nyl0 = yl if yl >= xl else xl\n"
        f"{ind}if nxh0 < xl or nyl0 > yh:\n"
        + _conflict_block(ind + "    ", "pred")
        + f"{ind}if nxh0 != xh:\n"
        + _narrow_block(ind + "    ", "x", "xi", "oth_x", "kb_x", "xl", "nxh0")
        + f"{ind}if nyl0 != yl:\n"
        + _narrow_block(ind + "    ", "y", "yi", "oth_y", "kb_y", "nyl0", "yh")
        + f"{ind}return None\n"
    )


def _cmp_apply_gt(ind: str) -> str:
    """Apply ``not(x <= y)``, i.e. ``y < x`` (narrow_lt swapped)."""
    return (
        f"{ind}nyh0 = yh if yh <= xh - 1 else xh - 1\n"
        f"{ind}nxl0 = xl if xl >= yl + 1 else yl + 1\n"
        f"{ind}if nyh0 < yl or nxl0 > xh:\n"
        + _conflict_block(ind + "    ", "pred")
        + f"{ind}if nxl0 != xl:\n"
        + _narrow_block(ind + "    ", "x", "xi", "oth_x", "kb_x", "nxl0", "xh")
        + f"{ind}if nyh0 != yh:\n"
        + _narrow_block(ind + "    ", "y", "yi", "oth_y", "kb_y", "yl", "nyh0")
        + f"{ind}return None\n"
    )


#: (apply when pred == 1, apply when pred == 0) per comparator code.
_CMP_APPLY = {
    0: (_cmp_apply_eq, _cmp_apply_ne),
    1: (_cmp_apply_ne, _cmp_apply_eq),
    2: (_cmp_apply_lt, _cmp_apply_ge),
    3: (_cmp_apply_le, _cmp_apply_gt),
}


def _cmp_source(code: int) -> str:
    apply_true, apply_false = _CMP_APPLY[code]
    src = _FACTORY_HEAD
    src += """\
    pred = prop.pred
    x = prop.x
    y = prop.y
    pi = pred.index
    xi = x.index
    yi = y.index
    oth_p = _oth(pred)
    oth_x = _oth(x)
    oth_y = _oth(y)
    kb_p = _kb(pred)
    kb_x = _kb(x)
    kb_y = _kb(y)

    def kernel(_store):
        pl = lo[pi]
        xl = lo[xi]
        xh = hi[xi]
        yl = lo[yi]
        yh = hi[yi]
        if pl != hi[pi]:
"""
    src += "".join(
        "            " + line + "\n" for line in _CMP_DECIDED[code]
    )
    src += _narrow_block(
        "            ", "pred", "pi", "oth_p", "kb_p", "value", "value"
    )
    src += "            return None\n"
    src += "        if pl == 1:\n"
    src += apply_true("            ")
    src += apply_false("        ")
    src += "    return kernel\n"
    return src


# -- mux source -------------------------------------------------------------
def _mux_source() -> str:
    src = _FACTORY_HEAD
    src += """\
    out = prop.out
    tvar = prop.then_var
    evar = prop.else_var
    oi = out.index
    si = prop.sel.index
    ti = tvar.index
    ei = evar.index
    oth_o = _oth(out)
    oth_t = _oth(tvar)
    oth_e = _oth(evar)
    kb_o = _kb(out)
    kb_t = _kb(tvar)
    kb_e = _kb(evar)

    def kernel(_store):
        sl = lo[si]
        if sl == hi[si]:
            if sl:
                tv = tvar
                tvi = ti
                toth = oth_t
                tkb = kb_t
            else:
                tv = evar
                tvi = ei
                toth = oth_e
                tkb = kb_e
            ol = lo[oi]
            oh = hi[oi]
            c0 = lo[tvi]
            c1 = hi[tvi]
            ml0 = ol if ol >= c0 else c0
            mh0 = oh if oh <= c1 else c1
            if ml0 > mh0:
"""
    src += _conflict_block("                ", "out")
    src += "            if ml0 != ol or mh0 != oh:\n"
    src += _narrow_block(
        "                ", "out", "oi", "oth_o", "kb_o", "ml0", "mh0"
    )
    src += "            if ml0 != c0 or mh0 != c1:\n"
    src += _narrow_block(
        "                ", "tv", "tvi", "toth", "tkb", "ml0", "mh0"
    )
    src += """\
            return None
        ol = lo[oi]
        oh = hi[oi]
        tl = lo[ti]
        th = hi[ti]
        el = lo[ei]
        eh = hi[ei]
        hull_lo = tl if tl <= el else el
        hull_hi = th if th >= eh else eh
        if hull_lo > ol or hull_hi < oh:
"""
    src += _narrow_block(
        "            ", "out", "oi", "oth_o", "kb_o", "hull_lo", "hull_hi"
    )
    src += """\
            ol = lo[oi]
            oh = hi[oi]
        # Branch compatibility uses the data bounds read *before* the
        # hull narrow, exactly like the reference propagator.
        if not ((ol <= th and tl <= oh) or (ol <= eh and el <= oh)):
"""
    src += _conflict_block("            ", "out")
    src += """\
        return None
    return kernel
"""
    return src


# -- Boolean gate sources ---------------------------------------------------
def _gate_unary_source() -> str:
    src = _FACTORY_HEAD
    src += """\
    out = prop.out
    inp = prop.inputs[0]
    oi = out.index
    ii = inp.index
    oth_o = _oth(out)
    oth_i = _oth(inp)
    kb_o = _kb(out)
    kb_i = _kb(inp)
    flip = 1 if prop._inversion else 0

    def kernel(_store):
        il = lo[ii]
        if il == hi[ii]:
            value = il ^ flip
"""
    src += _narrow_block(
        "            ", "out", "oi", "oth_o", "kb_o", "value", "value"
    )
    src += """\
            return None
        ol = lo[oi]
        if ol == hi[oi]:
            value = ol ^ flip
"""
    src += _narrow_block(
        "            ", "inp", "ii", "oth_i", "kb_i", "value", "value"
    )
    src += """\
            return None
        return None
    return kernel
"""
    return src


def _gate_xor_source() -> str:
    src = _FACTORY_HEAD
    src += """\
    out = prop.out
    a = prop.inputs[0]
    b = prop.inputs[1]
    oi = out.index
    ai = a.index
    bi = b.index
    oth_o = _oth(out)
    oth_a = _oth(a)
    oth_b = _oth(b)
    kb_o = _kb(out)
    kb_a = _kb(a)
    kb_b = _kb(b)
    flip = 1 if prop._inversion else 0

    def kernel(_store):
        ov = lo[oi]
        av = lo[ai]
        bv = lo[bi]
        o_known = ov == hi[oi]
        a_known = av == hi[ai]
        b_known = bv == hi[bi]
        unknown = 3 - (o_known + a_known + b_known)
        if unknown >= 2:
            return None
        if unknown == 0:
            if ov ^ av ^ bv != flip:
"""
    src += _conflict_block("                ", "out")
    src += """\
            return None
        if not o_known:
            tv = out
            tvi = oi
            toth = oth_o
            tkb = kb_o
            value = av ^ bv ^ flip
        elif not a_known:
            tv = a
            tvi = ai
            toth = oth_a
            tkb = kb_a
            value = ov ^ bv ^ flip
        else:
            tv = b
            tvi = bi
            toth = oth_b
            tkb = kb_b
            value = ov ^ av ^ flip
"""
    src += _narrow_block(
        "        ", "tv", "tvi", "toth", "tkb", "value", "value"
    )
    src += """\
        return None
    return kernel
"""
    return src


def _gate_and_or_source() -> str:
    src = _FACTORY_HEAD
    src += """\
    out = prop.out
    input_vars = prop.inputs
    oi = out.index
    input_indices = tuple(v.index for v in input_vars)
    oth_o = _oth(out)
    kb_o = _kb(out)
    oth_in = tuple(_oth(v) for v in input_vars)
    kb_in = tuple(_kb(v) for v in input_vars)
    controlling = prop._controlling
    controlled_output = controlling ^ (1 if prop._inversion else 0)
    non_controlled = 1 - controlled_output
    non_controlling = 1 - controlling

    def kernel(_store):
        unknown_count = 0
        fu_slot = -1
        slot = 0
        for index in input_indices:
            value = lo[index]
            if value != hi[index]:
                unknown_count += 1
                if fu_slot < 0:
                    fu_slot = slot
            elif value == controlling:
"""
    src += _narrow_block(
        "                ",
        "out",
        "oi",
        "oth_o",
        "kb_o",
        "controlled_output",
        "controlled_output",
    )
    src += """\
                return None
            slot += 1
        if unknown_count == 0:
"""
    src += _narrow_block(
        "            ",
        "out",
        "oi",
        "oth_o",
        "kb_o",
        "non_controlled",
        "non_controlled",
    )
    src += """\
            return None
        ov = lo[oi]
        if ov != hi[oi]:
            return None
        if ov == non_controlled:
            slot = 0
            for tvi in input_indices:
                if lo[tvi] != hi[tvi]:
                    tv = input_vars[slot]
                    toth = oth_in[slot]
                    tkb = kb_in[slot]
"""
    src += _narrow_block(
        "                    ",
        "tv",
        "tvi",
        "toth",
        "tkb",
        "non_controlling",
        "non_controlling",
    )
    src += """\
                slot += 1
            return None
        if unknown_count == 1:
            tv = input_vars[fu_slot]
            tvi = input_indices[fu_slot]
            toth = oth_in[fu_slot]
            tkb = kb_in[fu_slot]
"""
    src += _narrow_block(
        "            ", "tv", "tvi", "toth", "tkb", "controlling", "controlling"
    )
    src += """\
            return None
        return None
    return kernel
"""
    return src


# -- linear source ----------------------------------------------------------
def _linear_source(count: int, signs: Tuple[int, ...]) -> str:
    """Source for one (arity, signs) linear cohort.

    Unrolls :meth:`LinearEqProp.propagate` with the coefficient signs
    resolved at generation time (the ceil/floor residual divisions
    differ by sign) and the running term/total updates kept in local
    variables — later positions of the same pass see earlier
    narrowings, exactly like the reference loop.
    """
    src = _FACTORY_HEAD
    src += "    constant = prop.constant\n"
    for p in range(count):
        src += f"    v{p} = variables[{p}]\n"
        src += f"    i{p} = v{p}.index\n"
        src += f"    c{p} = prop.coeffs[{p}]\n"
        src += f"    oth{p} = _oth(v{p})\n"
        src += f"    kb{p} = _kb(v{p})\n"
    src += "\n    def kernel(_store):\n"
    for p in range(count):
        if signs[p] > 0:
            src += f"        t_lo{p} = c{p} * lo[i{p}]\n"
            src += f"        t_hi{p} = c{p} * hi[i{p}]\n"
        else:
            src += f"        t_lo{p} = c{p} * hi[i{p}]\n"
            src += f"        t_hi{p} = c{p} * lo[i{p}]\n"
    totals_lo = " + ".join(f"t_lo{p}" for p in range(count))
    totals_hi = " + ".join(f"t_hi{p}" for p in range(count))
    src += f"        total_lo = {totals_lo}\n"
    src += f"        total_hi = {totals_hi}\n"
    src += "        while True:\n"
    src += "            changed = False\n"
    src += "            if total_lo > constant or total_hi < constant:\n"
    src += _conflict_block("                ", "v0")
    for p in range(count):
        if signs[p] > 0:
            src += (
                f"            var_lo = -((-(constant - (total_hi - t_hi{p})))"
                f" // c{p})\n"
            )
            src += (
                f"            var_hi = (constant - (total_lo - t_lo{p}))"
                f" // c{p}\n"
            )
        else:
            src += (
                f"            var_lo = -((-(constant - (total_lo - t_lo{p})))"
                f" // c{p})\n"
            )
            src += (
                f"            var_hi = (constant - (total_hi - t_hi{p}))"
                f" // c{p}\n"
            )
        src += f"            if var_lo > lo[i{p}] or var_hi < hi[i{p}]:\n"
        src += "                if var_lo > var_hi:\n"
        src += _conflict_block("                    ", f"v{p}")
        src += _narrow_block(
            "                ",
            f"v{p}",
            f"i{p}",
            f"oth{p}",
            f"kb{p}",
            "var_lo",
            "var_hi",
        )
        src += "                changed = True\n"
        if signs[p] > 0:
            src += f"                n_lo = c{p} * lo[i{p}]\n"
            src += f"                n_hi = c{p} * hi[i{p}]\n"
        else:
            src += f"                n_lo = c{p} * hi[i{p}]\n"
            src += f"                n_hi = c{p} * lo[i{p}]\n"
        src += f"                total_lo += n_lo - t_lo{p}\n"
        src += f"                total_hi += n_hi - t_hi{p}\n"
        src += f"                t_lo{p} = n_lo\n"
        src += f"                t_hi{p} = n_hi\n"
    src += "            if not changed:\n"
    src += "                return None\n"
    src += "    return kernel\n"
    return src


def _factory_for(entry: Tuple) -> Callable:
    """The exec()-generated kernel factory for one plan entry (cached)."""
    factory = _KERNEL_FACTORIES.get(entry)
    if factory is not None:
        return factory
    family = entry[0]
    if family == "lin":
        src = _linear_source(entry[1], entry[2])
    elif family == "cmp":
        src = _cmp_source(entry[1])
    elif family == "mux":
        src = _mux_source()
    elif family == "g1":
        src = _gate_unary_source()
    elif family == "gx":
        src = _gate_xor_source()
    else:
        src = _gate_and_or_source()
    # ``_interval_cache`` is cleared in place by ``reset_interval_cache``
    # (never rebound), so binding its ``get`` here stays valid; the
    # inlined hit path bumps the hit counter exactly like ``make`` and
    # leaves the miss path (build + bounded insert) to ``make`` itself.
    namespace = {
        "Conflict": Conflict,
        "Event": Event,
        "_make": Interval.make,
        "_cget": _interval_mod._CACHE.get,
        "_chits": _interval_mod._CACHE_COUNTS,
    }
    exec(src, namespace)  # noqa: S102 - trusted codegen
    factory = namespace["factory"]
    _KERNEL_FACTORIES[entry] = factory
    return factory


def _kernel_from_entry(
    prop: Propagator, entry: Optional[Tuple], store
) -> Callable:
    if entry is None:
        return prop.propagate
    return _factory_for(entry)(prop, store)


def build_kernels(
    propagators: Sequence[Propagator],
    plan_key: Optional[str] = None,
    store=None,
) -> Tuple[List[Callable], Tuple, bool]:
    """Specialized kernels for a propagator list over ``store``.

    Returns ``(kernels, plan, cache_hit)``; ``kernels[i]`` is the
    closure for ``propagators[i]`` (the bound reference ``propagate``
    when no kernel family applies) and ``plan[i]`` its classification
    entry.  ``plan_key`` — a :func:`netlist_signature` — caches the
    classification so session frame extension and portfolio problem
    rebuilds skip the classification pass.  ``store`` is the
    :class:`~repro.constraints.store.DomainStore` the kernels will run
    against: its bound arrays are captured in the kernel closures, so
    the kernels are only valid for that store.
    """
    if store is None:
        raise ValueError("build_kernels requires the target DomainStore")
    plan = None
    hit = False
    if plan_key is not None:
        plan = _KERNEL_PLAN_CACHE.get(plan_key)
        if plan is not None and len(plan) != len(propagators):
            plan = None  # defensive: unexpected signature collision
    if plan is None:
        plan = tuple(classify_propagator(p) for p in propagators)
        if plan_key is not None:
            _KERNEL_PLAN_CACHE[plan_key] = plan
            _KERNEL_PLAN_STATS[1] += 1
    else:
        hit = True
        _KERNEL_PLAN_STATS[0] += 1
    kernels = [
        _kernel_from_entry(prop, entry, store)
        for prop, entry in zip(propagators, plan)
    ]
    return kernels, plan, hit


def extend_compiled(
    system: CompiledSystem,
    nodes: List[Node],
    mux_select_implication: bool = False,
) -> CompiledExtension:
    """Compile a node suffix into an existing system (frame extension).

    ``nodes`` must be new nodes of ``system.circuit`` in dependency order
    whose operands are either earlier nodes in the list or nets already
    compiled — exactly what the incremental unroller hands back.  The
    appended variables keep the system's dense index space, so the
    existing domain store / engine / activity order can absorb them via
    their own ``add``/``extend`` hooks without recompiling frames 0..t.
    """
    compiler = _Compiler(
        system.circuit, mux_select_implication, system=system
    )
    var_mark = len(system.variables)
    prop_mark = len(system.propagators)
    for node in nodes:
        if node.output.index in system.var_of_net:
            raise UnsupportedOperationError(
                f"node {node.index} ({node.output.name}) is already compiled"
            )
        compiler._compile_node(node)
    return CompiledExtension(
        variables=system.variables[var_mark:],
        propagators=system.propagators[prop_mark:],
    )
