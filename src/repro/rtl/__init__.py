"""Word-level RTL netlist IR and structural analyses.

The circuit structure is the raw material of the paper's contribution:
both predicate learning (Section 3) and structural justification
(Section 4) are defined directly on this netlist rather than on a flat
formula.
"""

from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit, CircuitStats, Net, Node, iter_fanin_cone
from repro.rtl.compose import copy_into
from repro.rtl.hdl import parse_module
from repro.rtl.optimize import optimize
from repro.rtl.levelize import (
    fanin_cone_nodes,
    fanout_cone_nodes,
    levelize,
    max_level,
    nets_by_level,
    transitive_fanout_count,
)
from repro.rtl.netlist_io import load, load_from_path, save, save_to_path
from repro.rtl.predicates import (
    PredicateReport,
    count_predicate_gates,
    extract_predicates,
)
from repro.rtl.simulate import (
    SequentialSimulator,
    evaluate_node,
    simulate_combinational,
)
from repro.rtl.types import (
    BOOLEAN_KINDS,
    JUSTIFIABLE_WORD_KINDS,
    PREDICATE_KINDS,
    WORD_KINDS,
    OpKind,
    is_boolean_gate,
    is_predicate,
    is_word_op,
)

__all__ = [
    "BOOLEAN_KINDS",
    "Circuit",
    "CircuitBuilder",
    "CircuitStats",
    "JUSTIFIABLE_WORD_KINDS",
    "Net",
    "Node",
    "OpKind",
    "PREDICATE_KINDS",
    "PredicateReport",
    "SequentialSimulator",
    "WORD_KINDS",
    "copy_into",
    "count_predicate_gates",
    "evaluate_node",
    "optimize",
    "parse_module",
    "extract_predicates",
    "fanin_cone_nodes",
    "fanout_cone_nodes",
    "is_boolean_gate",
    "is_predicate",
    "is_word_op",
    "iter_fanin_cone",
    "levelize",
    "load",
    "load_from_path",
    "max_level",
    "nets_by_level",
    "save",
    "save_to_path",
    "simulate_combinational",
    "transitive_fanout_count",
]
