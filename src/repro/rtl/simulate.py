"""Concrete two-valued simulation of circuits.

The simulator is the ground-truth oracle for the whole library: the
constraint propagators, the bit-blaster and all four solver configurations
are cross-checked against it in the test suite.  It evaluates a
combinational circuit for given primary-input values, and steps a
sequential circuit cycle by cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import CircuitError
from repro.rtl.circuit import Circuit, Net, Node
from repro.rtl.types import OpKind


def _mask(width: int) -> int:
    return (1 << width) - 1


def evaluate_node(node: Node, operand_values: "list[int]") -> int:
    """Value of one node given concrete operand values."""
    kind = node.kind
    width = node.output.width
    if kind is OpKind.BUF:
        return operand_values[0]
    if kind is OpKind.NOT:
        return 1 - operand_values[0]
    if kind is OpKind.AND:
        return int(all(operand_values))
    if kind is OpKind.OR:
        return int(any(operand_values))
    if kind is OpKind.NAND:
        return 1 - int(all(operand_values))
    if kind is OpKind.NOR:
        return 1 - int(any(operand_values))
    if kind is OpKind.XOR:
        return operand_values[0] ^ operand_values[1]
    if kind is OpKind.XNOR:
        return 1 - (operand_values[0] ^ operand_values[1])
    if kind is OpKind.MUX:
        return operand_values[1] if operand_values[0] else operand_values[2]
    if kind is OpKind.ADD:
        return (operand_values[0] + operand_values[1]) & _mask(width)
    if kind is OpKind.SUB:
        return (operand_values[0] - operand_values[1]) & _mask(width)
    if kind is OpKind.MULC:
        assert node.factor is not None
        return (operand_values[0] * node.factor) & _mask(width)
    if kind is OpKind.SHL:
        assert node.shift_amount is not None
        return (operand_values[0] << node.shift_amount) & _mask(width)
    if kind is OpKind.SHR:
        assert node.shift_amount is not None
        return operand_values[0] >> node.shift_amount
    if kind is OpKind.CONCAT:
        lo_width = node.operands[1].width
        return (operand_values[0] << lo_width) | operand_values[1]
    if kind is OpKind.EXTRACT:
        assert node.extract_lo is not None and node.extract_hi is not None
        span = node.extract_hi - node.extract_lo + 1
        return (operand_values[0] >> node.extract_lo) & _mask(span)
    if kind is OpKind.ZEXT:
        return operand_values[0]
    if kind is OpKind.EQ:
        return int(operand_values[0] == operand_values[1])
    if kind is OpKind.NE:
        return int(operand_values[0] != operand_values[1])
    if kind is OpKind.LT:
        return int(operand_values[0] < operand_values[1])
    if kind is OpKind.LE:
        return int(operand_values[0] <= operand_values[1])
    if kind is OpKind.GT:
        return int(operand_values[0] > operand_values[1])
    if kind is OpKind.GE:
        return int(operand_values[0] >= operand_values[1])
    raise CircuitError(f"cannot evaluate node kind {kind.value}")


def simulate_combinational(
    circuit: Circuit,
    input_values: Mapping[str, int],
    register_values: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Evaluate every net of the circuit once.

    ``input_values`` maps primary-input names to values; for sequential
    circuits ``register_values`` supplies the current state (defaulting to
    each register's init value).  Returns a map of *every* net name to its
    value, so tests can probe internal signals.
    """
    values: Dict[int, int] = {}
    for net in circuit.inputs:
        if net.name not in input_values:
            raise CircuitError(f"missing value for input {net.name!r}")
        value = input_values[net.name]
        if not 0 <= value <= net.max_value:
            raise CircuitError(
                f"value {value} does not fit input {net.name!r} "
                f"({net.width} bits)"
            )
        values[net.index] = value
    for node in circuit.registers:
        name = node.output.name
        if register_values is not None and name in register_values:
            values[node.output.index] = register_values[name]
        else:
            assert node.init_value is not None
            values[node.output.index] = node.init_value

    for node in circuit.topological_nodes():
        if node.kind in (OpKind.INPUT, OpKind.REG):
            continue
        if node.kind is OpKind.CONST:
            assert node.const_value is not None
            values[node.output.index] = node.const_value
            continue
        operand_values = [values[operand.index] for operand in node.operands]
        values[node.output.index] = evaluate_node(node, operand_values)

    result = {net.name: values[net.index] for net in circuit.nets}
    for output_name, net in circuit.outputs.items():
        result[output_name] = values[net.index]
    return result


class SequentialSimulator:
    """Cycle-accurate simulation of a sequential circuit."""

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self.state: Dict[str, int] = {
            node.output.name: node.init_value or 0 for node in circuit.registers
        }
        self.cycle = 0

    def step(self, input_values: Mapping[str, int]) -> Dict[str, int]:
        """Advance one clock cycle; returns all net values *before* the edge."""
        values = simulate_combinational(self.circuit, input_values, self.state)
        next_state: Dict[str, int] = {}
        for node in self.circuit.registers:
            next_net = node.operands[0]
            next_state[node.output.name] = values[next_net.name]
        self.state = next_state
        self.cycle += 1
        return values

    def run(
        self, input_traces: Iterable[Mapping[str, int]]
    ) -> List[Dict[str, int]]:
        """Simulate a sequence of cycles; returns per-cycle net values."""
        return [self.step(values) for values in input_traces]
