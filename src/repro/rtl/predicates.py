"""Predicate-logic extraction (Section 3, step 1 of the paper).

The paper classifies "all Boolean inputs to arithmetic operators, such as
control signals to multiplexers" as predicates, and extracts the predicate
logic that controls the datapath with a cone-of-influence analysis.  The
candidates for recursive learning are the Boolean gates of that control
cone, probed in level order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.rtl.circuit import Circuit, Net
from repro.rtl.levelize import levelize
from repro.rtl.types import BOOLEAN_KINDS, PREDICATE_KINDS, OpKind


@dataclass(frozen=True)
class PredicateReport:
    """Classification of the control/datapath boundary of a circuit."""

    #: Comparator outputs: predicates *sourced* from the datapath.
    predicate_outputs: List[Net]
    #: Boolean nets steering datapath operators (mux selects).
    control_points: List[Net]
    #: Boolean gate outputs inside the predicate-logic cone, level-ordered.
    #: These are the probe candidates for recursive learning.
    learning_candidates: List[Net]


def extract_predicates(circuit: Circuit) -> PredicateReport:
    """Identify the predicate logic that controls the datapath.

    The predicate cone is computed in both directions: forward from the
    comparator outputs (information flowing out of the datapath) and
    backward from the datapath control points (information flowing back
    in).  Boolean gates in the union are the learning candidates; they are
    returned lowest level first, exactly the probing order of Section 3.
    """
    predicate_outputs: List[Net] = []
    control_points: List[Net] = []
    for node in circuit.nodes:
        if node.kind in PREDICATE_KINDS:
            predicate_outputs.append(node.output)
        elif node.kind is OpKind.MUX:
            control_points.append(node.operands[0])

    cone: Set[int] = set()

    # Backward from control points: the Boolean logic computing them.
    stack = list(control_points)
    while stack:
        net = stack.pop()
        if net.index in cone or not net.is_bool:
            continue
        cone.add(net.index)
        driver = net.driver
        if driver is not None and driver.kind in BOOLEAN_KINDS:
            stack.extend(driver.operands)

    # Forward from predicate outputs: Boolean logic consuming them.
    stack = list(predicate_outputs)
    seen_forward: Set[int] = set()
    while stack:
        net = stack.pop()
        if net.index in seen_forward:
            continue
        seen_forward.add(net.index)
        for user in net.fanouts:
            if user.kind in BOOLEAN_KINDS:
                cone.add(user.output.index)
                stack.append(user.output)

    # Predicate outputs themselves are part of the predicate logic.
    cone.update(net.index for net in predicate_outputs)

    levels = levelize(circuit)
    candidates = [
        net
        for net in circuit.nets
        if net.index in cone
        and net.driver is not None
        and net.driver.kind in (BOOLEAN_KINDS | PREDICATE_KINDS)
    ]
    candidates.sort(key=lambda net: (levels.get(net.index, 0), net.index))

    return PredicateReport(
        predicate_outputs=predicate_outputs,
        control_points=control_points,
        learning_candidates=candidates,
    )


def count_predicate_gates(circuit: Circuit) -> int:
    """Size of the predicate logic (the paper's per-circuit learning cap
    in Section 5.2 is ``min(#predicate logic gates, 2000)``)."""
    return len(extract_predicates(circuit).learning_candidates)
