"""A small Verilog-flavoured HDL frontend.

Circuits can be described in a compact RTL dialect instead of the
builder API::

    module clipper(input [8:0] a, input [8:0] b, output [8:0] y,
                   output over);
      wire [8:0] total = a + b;
      wire over_w = total > 9'd200;
      assign y = over_w ? 9'd200 : total;
      assign over = over_w;
    endmodule

Supported subset:

* one ``module`` per source, with ``input``/``output`` port
  declarations (``[msb:0]`` ranges; 1-bit without a range);
* ``wire [range] name = expr;`` and ``assign name = expr;`` for
  combinational logic (``assign`` may target declared outputs/wires);
* ``reg [range] name = init;`` with ``always @(posedge clk)
  name <= expr;`` for state (the clock is implicit — any identifier);
* expressions: ``?:``, ``|| && | & ^ == != < <= > >= + - << >>``,
  unary ``! ~ -``, parentheses, sized literals (``8'd255``, ``4'hF``,
  ``3'b101``), plain decimal literals, identifiers, bit and part
  selects (``x[3]``, ``x[5:2]``) and concatenation (``{a, b}``).

Width rules are deliberately simple and explicit (this is a frontend
for a solver, not a synthesis tool): arithmetic and comparison operands
are zero-extended to the wider side; logical/bitwise Boolean operators
require 1-bit operands; shifts take constant amounts; a plain decimal
literal adapts to the width of the other operand.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import NetlistFormatError
from repro.rtl.builder import CircuitBuilder
from repro.rtl.circuit import Circuit, Net

# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<sized>\d+'[bdh][0-9a-fA-F_]+)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9$]*)
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*(){}\[\]<>,;:=?!~&|^@])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "reg",
    "assign",
    "always",
    "posedge",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident", "number", "sized", "op", "keyword"
    text: str
    position: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise NetlistFormatError(
                f"unexpected character {source[index]!r} at offset {index}"
            )
        index = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        text = match.group()
        if kind == "ident" and text in _KEYWORDS:
            kind = "keyword"
        tokens.append(_Token(kind, text, match.start()))
    return tokens


# ----------------------------------------------------------------------
# Values: a net, or an as-yet unsized integer literal
# ----------------------------------------------------------------------


@dataclass
class _Unsized:
    value: int


_Value = Union[Net, _Unsized]


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.position = 0
        self.builder: Optional[CircuitBuilder] = None
        #: name -> net for every declared signal.
        self.signals: Dict[str, Net] = {}
        #: output names in declaration order.
        self.output_names: List[str] = []
        #: deferred continuous assignments (target, expression tokens).
        self.clock_name: Optional[str] = None

    # -- token helpers ---------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise NetlistFormatError("unexpected end of input")
        self.position += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise NetlistFormatError(
                f"expected {text!r} but found {token.text!r} at offset "
                f"{token.position}"
            )
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self.position += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------
    def parse_module(self) -> Circuit:
        self._expect("module")
        name = self._next()
        if name.kind != "ident":
            raise NetlistFormatError(f"bad module name {name.text!r}")
        self.builder = CircuitBuilder(name.text)
        self._expect("(")
        if not self._accept(")"):
            while True:
                self._parse_port()
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        while not self._accept("endmodule"):
            self._parse_item()
        for output_name in self.output_names:
            if output_name not in self.signals:
                raise NetlistFormatError(
                    f"output {output_name!r} was never assigned"
                )
            self.builder.output(output_name, self.signals[output_name])
        return self.builder.build()

    def _parse_range(self) -> int:
        """``[msb:0]`` -> width; absent -> 1."""
        if not self._accept("["):
            return 1
        msb = self._next()
        if msb.kind != "number":
            raise NetlistFormatError(f"bad range msb {msb.text!r}")
        self._expect(":")
        lsb = self._next()
        if lsb.text != "0":
            raise NetlistFormatError("ranges must end at 0 (e.g. [7:0])")
        self._expect("]")
        return int(msb.text) + 1

    def _parse_port(self) -> None:
        direction = self._next()
        if direction.text not in ("input", "output"):
            raise NetlistFormatError(
                f"expected input/output, found {direction.text!r}"
            )
        width = self._parse_range()
        name = self._next()
        if name.kind != "ident":
            raise NetlistFormatError(f"bad port name {name.text!r}")
        assert self.builder is not None
        if direction.text == "input":
            self.signals[name.text] = self.builder.input(name.text, width)
        else:
            self.output_names.append(name.text)
            # Output width is checked when assigned.
            self._declared_output_widths = getattr(
                self, "_declared_output_widths", {}
            )
            self._declared_output_widths[name.text] = width

    def _parse_item(self) -> None:
        token = self._peek()
        if token is None:
            raise NetlistFormatError("unterminated module")
        if token.text == "wire":
            self._parse_wire()
        elif token.text == "reg":
            self._parse_reg()
        elif token.text == "assign":
            self._parse_assign()
        elif token.text == "always":
            self._parse_always()
        else:
            raise NetlistFormatError(
                f"unexpected {token.text!r} at offset {token.position}"
            )

    def _parse_wire(self) -> None:
        self._expect("wire")
        width = self._parse_range()
        name = self._next().text
        self._expect("=")
        value = self._expression()
        self._expect(";")
        net = self._coerce(value, width)
        if net.width != width:
            net = self._fit(net, width, name)
        self._bind(name, net)

    def _parse_reg(self) -> None:
        assert self.builder is not None
        self._expect("reg")
        width = self._parse_range()
        name = self._next().text
        init = 0
        if self._accept("="):
            init_value = self._expression()
            if not isinstance(init_value, _Unsized):
                raise NetlistFormatError(
                    f"register {name!r} initialiser must be a constant"
                )
            init = init_value.value
        self._expect(";")
        self._bind(name, self.builder.register(name, width, init=init))

    def _parse_assign(self) -> None:
        self._expect("assign")
        name = self._next().text
        self._expect("=")
        value = self._expression()
        self._expect(";")
        declared = getattr(self, "_declared_output_widths", {}).get(name)
        width = declared if declared is not None else None
        if width is None:
            if isinstance(value, _Unsized):
                raise NetlistFormatError(
                    f"cannot infer a width for {name!r} from a bare literal"
                )
            width = value.width
        net = self._coerce(value, width)
        if net.width != width:
            net = self._fit(net, width, name)
        self._bind(name, net)

    def _parse_always(self) -> None:
        assert self.builder is not None
        self._expect("always")
        self._expect("@")
        self._expect("(")
        self._expect("posedge")
        clock = self._next().text
        if self.clock_name is None:
            self.clock_name = clock
        elif clock != self.clock_name:
            raise NetlistFormatError("multiple clock domains are unsupported")
        self._expect(")")
        name = self._next().text
        if name not in self.signals:
            raise NetlistFormatError(f"assignment to undeclared reg {name!r}")
        register = self.signals[name]
        self._expect("<=")
        value = self._expression()
        self._expect(";")
        self.builder.next_state(register, self._coerce(value, register.width))

    def _bind(self, name: str, net: Net) -> None:
        if name in self.signals:
            raise NetlistFormatError(f"signal {name!r} assigned twice")
        self.signals[name] = net

    # -- expressions --------------------------------------------------------
    # Precedence (low to high): ?: | || | && | "|" | ^ | & | ==/!= |
    # relational | shifts | +/- | unary | primary.
    def _expression(self) -> _Value:
        condition = self._or_expr()
        if self._accept("?"):
            then_value = self._expression()
            self._expect(":")
            else_value = self._expression()
            return self._make_mux(condition, then_value, else_value)
        return condition

    def _or_expr(self) -> _Value:
        left = self._and_expr()
        while True:
            if self._accept("||") or self._accept("|"):
                right = self._and_expr()
                left = self._bool_gate("or_", left, right)
            else:
                return left

    def _and_expr(self) -> _Value:
        left = self._xor_expr()
        while True:
            if self._accept("&&") or self._accept("&"):
                right = self._xor_expr()
                left = self._bool_gate("and_", left, right)
            else:
                return left

    def _xor_expr(self) -> _Value:
        left = self._equality()
        while self._accept("^"):
            right = self._equality()
            left = self._bool_gate("xor", left, right)
        return left

    def _equality(self) -> _Value:
        left = self._relational()
        while True:
            if self._accept("=="):
                left = self._compare("eq", left, self._relational())
            elif self._accept("!="):
                left = self._compare("ne", left, self._relational())
            else:
                return left

    def _relational(self) -> _Value:
        left = self._shift()
        while True:
            token = self._peek()
            if token is None:
                return left
            if token.text == "<":
                self._next()
                left = self._compare("lt", left, self._shift())
            elif token.text == "<=":
                # '<=' is also the non-blocking assignment; inside an
                # expression it is the comparison.
                self._next()
                left = self._compare("le", left, self._shift())
            elif token.text == ">":
                self._next()
                left = self._compare("gt", left, self._shift())
            elif token.text == ">=":
                self._next()
                left = self._compare("ge", left, self._shift())
            else:
                return left

    def _shift(self) -> _Value:
        left = self._additive()
        while True:
            if self._accept("<<"):
                amount = self._additive()
                left = self._make_shift(left, amount, "shl")
            elif self._accept(">>"):
                amount = self._additive()
                left = self._make_shift(left, amount, "shr")
            else:
                return left

    def _additive(self) -> _Value:
        left = self._unary()
        while True:
            if self._accept("+"):
                left = self._arith("add", left, self._unary())
            elif self._accept("-"):
                left = self._arith("sub", left, self._unary())
            else:
                return left

    def _unary(self) -> _Value:
        if self._accept("!") or self._accept("~"):
            operand = self._unary()
            net = self._coerce(operand, 1)
            assert self.builder is not None
            if net.width != 1:
                raise NetlistFormatError("'!'/'~' need a 1-bit operand")
            return self.builder.not_(net)
        if self._accept("-"):
            operand = self._unary()
            if isinstance(operand, _Unsized):
                return _Unsized(-operand.value)
            assert self.builder is not None
            zero = self.builder.const(0, operand.width)
            return self.builder.sub(zero, operand)
        return self._primary()

    def _primary(self) -> _Value:
        token = self._next()
        if token.text == "(":
            value = self._expression()
            self._expect(")")
            return value
        if token.text == "{":
            parts = [self._expression()]
            while self._accept(","):
                parts.append(self._expression())
            self._expect("}")
            nets = []
            for part in parts:
                if isinstance(part, _Unsized):
                    raise NetlistFormatError(
                        "concatenation parts need explicit widths"
                    )
                nets.append(part)
            assert self.builder is not None
            result = nets[0]
            for net in nets[1:]:
                result = self.builder.concat(result, net)
            return result
        if token.kind == "sized":
            return self._sized_literal(token.text)
        if token.kind == "number":
            return _Unsized(int(token.text))
        if token.kind == "ident":
            if token.text not in self.signals:
                raise NetlistFormatError(
                    f"use of undeclared signal {token.text!r} at offset "
                    f"{token.position}"
                )
            net = self.signals[token.text]
            return self._maybe_select(net)
        raise NetlistFormatError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )

    def _maybe_select(self, net: Net) -> Net:
        if not self._accept("["):
            return net
        assert self.builder is not None
        first = self._next()
        if first.kind != "number":
            raise NetlistFormatError("bit selects need constant indices")
        high = int(first.text)
        low = high
        if self._accept(":"):
            second = self._next()
            if second.kind != "number":
                raise NetlistFormatError("part selects need constant indices")
            low = int(second.text)
        self._expect("]")
        return self.builder.extract(net, high, low)

    def _sized_literal(self, text: str) -> Net:
        width_text, _, rest = text.partition("'")
        base_char, digits = rest[0], rest[1:].replace("_", "")
        base = {"b": 2, "d": 10, "h": 16}[base_char]
        value = int(digits, base)
        width = int(width_text)
        assert self.builder is not None
        if not 0 <= value < (1 << width):
            raise NetlistFormatError(
                f"literal {text!r} does not fit its declared width"
            )
        return self.builder.const(value, width)

    # -- operator construction ----------------------------------------------
    def _coerce(self, value: _Value, width: int) -> Net:
        assert self.builder is not None
        if isinstance(value, _Unsized):
            if not 0 <= value.value < (1 << width):
                raise NetlistFormatError(
                    f"literal {value.value} does not fit in {width} bits"
                )
            return self.builder.const(value.value, width)
        return value

    def _fit(self, net: Net, width: int, context: str) -> Net:
        assert self.builder is not None
        if net.width == width:
            return net
        if net.width < width:
            return self.builder.zext(net, width)
        raise NetlistFormatError(
            f"{context!r}: expression width {net.width} exceeds declared "
            f"width {width}"
        )

    def _balance(self, left: _Value, right: _Value) -> Tuple[Net, Net]:
        assert self.builder is not None
        if isinstance(left, _Unsized) and isinstance(right, _Unsized):
            raise NetlistFormatError(
                "cannot infer widths: both operands are bare literals"
            )
        if isinstance(left, _Unsized):
            assert isinstance(right, Net)
            left = self._coerce(left, right.width)
        if isinstance(right, _Unsized):
            right = self._coerce(right, left.width)
        if left.width < right.width:
            left = self.builder.zext(left, right.width)
        elif right.width < left.width:
            right = self.builder.zext(right, left.width)
        return left, right

    def _arith(self, op: str, left: _Value, right: _Value) -> Net:
        assert self.builder is not None
        left_net, right_net = self._balance(left, right)
        return getattr(self.builder, op)(left_net, right_net)

    def _compare(self, op: str, left: _Value, right: _Value) -> Net:
        assert self.builder is not None
        left_net, right_net = self._balance(left, right)
        return getattr(self.builder, op)(left_net, right_net)

    def _bool_gate(self, op: str, left: _Value, right: _Value) -> Net:
        assert self.builder is not None
        left_net = self._coerce(left, 1)
        right_net = self._coerce(right, 1)
        if left_net.width != 1 or right_net.width != 1:
            raise NetlistFormatError(
                "logical/bitwise Boolean operators need 1-bit operands"
            )
        return getattr(self.builder, op)(left_net, right_net)

    def _make_mux(
        self, condition: _Value, then_value: _Value, else_value: _Value
    ) -> Net:
        assert self.builder is not None
        condition_net = self._coerce(condition, 1)
        if condition_net.width != 1:
            raise NetlistFormatError("'?:' condition must be 1 bit")
        then_net, else_net = self._balance(then_value, else_value)
        return self.builder.mux(condition_net, then_net, else_net)

    def _make_shift(self, value: _Value, amount: _Value, op: str) -> Net:
        assert self.builder is not None
        if not isinstance(amount, _Unsized):
            raise NetlistFormatError("shift amounts must be constants")
        if isinstance(value, _Unsized):
            raise NetlistFormatError("shift operand needs an explicit width")
        return getattr(self.builder, op)(value, amount.value)


def parse_module(source: str) -> Circuit:
    """Parse one HDL module into a :class:`Circuit`."""
    parser = _Parser(source)
    circuit = parser.parse_module()
    return circuit
