"""Word-level netlist IR: nets, nodes and circuits.

A :class:`Circuit` is a directed graph of :class:`Node` operators connected
by :class:`Net` signals.  Nets carry an unsigned value of a fixed bit-width
(width 1 is the Boolean domain ``<0, 1>``, width ``w`` the word domain
``<0, 2**w - 1>`` of Section 2.1).  Sequential behaviour is expressed with
``REG`` nodes; :mod:`repro.bmc` unrolls them into purely combinational
circuits before solving.

The IR is deliberately explicit: every operator is a node, every signal a
net, and structural queries (fanout, levels, cones) are cheap — this is
the structure the paper's techniques exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CircuitError
from repro.rtl.types import (
    BOOLEAN_KINDS,
    PREDICATE_KINDS,
    WORD_KINDS,
    OpKind,
    arity,
)


@dataclass(eq=False)
class Net:
    """A signal of fixed bit-width driven by at most one node."""

    index: int
    name: str
    width: int
    driver: Optional["Node"] = None
    fanouts: List["Node"] = field(default_factory=list)

    @property
    def is_bool(self) -> bool:
        """True when this net is a 1-bit (Boolean) signal."""
        return self.width == 1

    @property
    def max_value(self) -> int:
        """Largest unsigned value representable on this net."""
        return (1 << self.width) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Net({self.name}:{self.width})"


@dataclass(eq=False)
class Node:
    """An operator instance driving exactly one output net."""

    index: int
    kind: OpKind
    output: Net
    operands: Tuple[Net, ...]
    # Kind-specific attributes (unused fields stay None).
    const_value: Optional[int] = None    # CONST
    init_value: Optional[int] = None     # REG reset value
    factor: Optional[int] = None         # MULC constant multiplier
    shift_amount: Optional[int] = None   # SHL / SHR
    extract_lo: Optional[int] = None     # EXTRACT low bit (inclusive)
    extract_hi: Optional[int] = None     # EXTRACT high bit (inclusive)

    @property
    def is_boolean_gate(self) -> bool:
        return self.kind in BOOLEAN_KINDS

    @property
    def is_predicate(self) -> bool:
        return self.kind in PREDICATE_KINDS

    @property
    def is_word_op(self) -> bool:
        return self.kind in WORD_KINDS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(n.name for n in self.operands)
        return f"Node({self.output.name} = {self.kind.value}({ops}))"


@dataclass(frozen=True)
class CircuitStats:
    """Operator census used for the tables in the paper's evaluation."""

    arith_ops: int
    bool_ops: int
    predicates: int
    inputs: int
    registers: int
    nets: int

    @property
    def total_ops(self) -> int:
        return self.arith_ops + self.bool_ops


class Circuit:
    """A mutable word-level netlist."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.nets: List[Net] = []
        self.nodes: List[Node] = []
        self.inputs: List[Net] = []
        self.registers: List[Node] = []
        self.outputs: Dict[str, Net] = {}
        self._net_by_name: Dict[str, Net] = {}
        self._next_auto = 0
        #: Memoized topological order, keyed by node count.  Nodes are
        #: append-only and the only post-construction operand mutation
        #: is register next-state wiring (excluded from the dependency
        #: walk), so the count fully determines the order.
        self._topo_cache: Optional[Tuple[int, List[Node]]] = None

    # ------------------------------------------------------------------
    # Net management
    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        while True:
            name = f"{prefix}{self._next_auto}"
            self._next_auto += 1
            if name not in self._net_by_name:
                return name

    def new_net(self, width: int, name: Optional[str] = None) -> Net:
        """Create a fresh undriven net."""
        if width < 1:
            raise CircuitError(f"net width must be positive, got {width}")
        if name is None:
            name = self._fresh_name("_n")
        if name in self._net_by_name:
            raise CircuitError(f"duplicate net name {name!r}")
        net = Net(index=len(self.nets), name=name, width=width)
        self.nets.append(net)
        self._net_by_name[name] = net
        return net

    def net(self, name: str) -> Net:
        """Look up a net by name."""
        try:
            return self._net_by_name[name]
        except KeyError:
            raise CircuitError(f"no net named {name!r}") from None

    def has_net(self, name: str) -> bool:
        return name in self._net_by_name

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def add_input(self, name: str, width: int) -> Net:
        """Declare a primary input."""
        net = self.new_net(width, name)
        node = Node(index=len(self.nodes), kind=OpKind.INPUT, output=net, operands=())
        net.driver = node
        self.nodes.append(node)
        self.inputs.append(net)
        return net

    def add_const(self, value: int, width: int, name: Optional[str] = None) -> Net:
        """A constant word; the value must fit in ``width`` bits."""
        if not 0 <= value < (1 << width):
            raise CircuitError(
                f"constant {value} does not fit in {width} bits"
            )
        net = self.new_net(width, name)
        node = Node(
            index=len(self.nodes),
            kind=OpKind.CONST,
            output=net,
            operands=(),
            const_value=value,
        )
        net.driver = node
        self.nodes.append(node)
        return net

    def add_register(self, name: str, width: int, init: int = 0) -> Net:
        """Declare a register; its next-state input is connected later.

        Returning the output net before the next-state net exists is what
        allows feedback loops (FSMs, counters) to be described naturally.
        """
        if not 0 <= init < (1 << width):
            raise CircuitError(f"register init {init} does not fit in {width} bits")
        net = self.new_net(width, name)
        node = Node(
            index=len(self.nodes),
            kind=OpKind.REG,
            output=net,
            operands=(),
            init_value=init,
        )
        net.driver = node
        self.nodes.append(node)
        self.registers.append(node)
        return net

    def set_register_next(self, reg_net: Net, next_net: Net) -> None:
        """Connect the next-state function of a register."""
        node = reg_net.driver
        if node is None or node.kind is not OpKind.REG:
            raise CircuitError(f"{reg_net.name!r} is not a register output")
        if node.operands:
            raise CircuitError(f"register {reg_net.name!r} already connected")
        if next_net.width != reg_net.width:
            raise CircuitError(
                f"register {reg_net.name!r} width {reg_net.width} != "
                f"next-state width {next_net.width}"
            )
        node.operands = (next_net,)
        next_net.fanouts.append(node)

    def add_node(
        self,
        kind: OpKind,
        operands: Sequence[Net],
        width: Optional[int] = None,
        name: Optional[str] = None,
        **attrs: int,
    ) -> Net:
        """Add an operator node and return its output net.

        ``width`` may be omitted where it is implied by the operands;
        kind-specific attributes (``factor``, ``shift_amount``,
        ``extract_lo``/``extract_hi``) are passed as keyword arguments.
        """
        operands = tuple(operands)
        self._check_operands(kind, operands, attrs)
        out_width = self._output_width(kind, operands, width, attrs)
        net = self.new_net(out_width, name)
        node = Node(
            index=len(self.nodes),
            kind=kind,
            output=net,
            operands=operands,
            factor=attrs.get("factor"),
            shift_amount=attrs.get("shift_amount"),
            extract_lo=attrs.get("extract_lo"),
            extract_hi=attrs.get("extract_hi"),
        )
        net.driver = node
        self.nodes.append(node)
        for operand in operands:
            operand.fanouts.append(node)
        return net

    def _check_operands(
        self, kind: OpKind, operands: Tuple[Net, ...], attrs: Dict[str, int]
    ) -> None:
        expected = arity(kind)
        if expected == -1:
            if len(operands) < 2:
                raise CircuitError(f"{kind.value} needs at least 2 operands")
        elif expected != len(operands):
            raise CircuitError(
                f"{kind.value} takes {expected} operands, got {len(operands)}"
            )
        if kind in BOOLEAN_KINDS:
            for operand in operands:
                if not operand.is_bool:
                    raise CircuitError(
                        f"{kind.value} operand {operand.name!r} must be 1 bit"
                    )
        if kind in PREDICATE_KINDS or kind in (OpKind.ADD, OpKind.SUB):
            if operands[0].width != operands[1].width:
                raise CircuitError(
                    f"{kind.value} operand widths differ: "
                    f"{operands[0].width} vs {operands[1].width}"
                )
        if kind is OpKind.MUX:
            if not operands[0].is_bool:
                raise CircuitError("mux select must be 1 bit")
            if operands[1].width != operands[2].width:
                raise CircuitError(
                    f"mux data widths differ: {operands[1].width} vs "
                    f"{operands[2].width}"
                )
        if kind is OpKind.MULC and "factor" not in attrs:
            raise CircuitError("mulc requires a 'factor' attribute")
        if kind in (OpKind.SHL, OpKind.SHR) and "shift_amount" not in attrs:
            raise CircuitError(f"{kind.value} requires a 'shift_amount' attribute")
        if kind is OpKind.EXTRACT:
            lo = attrs.get("extract_lo")
            hi = attrs.get("extract_hi")
            if lo is None or hi is None:
                raise CircuitError("extract requires extract_lo and extract_hi")
            if not 0 <= lo <= hi < operands[0].width:
                raise CircuitError(
                    f"extract range [{lo}, {hi}] out of bounds for width "
                    f"{operands[0].width}"
                )

    def _output_width(
        self,
        kind: OpKind,
        operands: Tuple[Net, ...],
        width: Optional[int],
        attrs: Dict[str, int],
    ) -> int:
        if kind in BOOLEAN_KINDS or kind in PREDICATE_KINDS:
            implied = 1
        elif kind is OpKind.MUX:
            implied = operands[1].width
        elif kind in (OpKind.ADD, OpKind.SUB, OpKind.MULC, OpKind.SHL, OpKind.SHR):
            implied = operands[0].width
        elif kind is OpKind.CONCAT:
            implied = operands[0].width + operands[1].width
        elif kind is OpKind.EXTRACT:
            implied = attrs["extract_hi"] - attrs["extract_lo"] + 1
        elif kind is OpKind.ZEXT:
            if width is None:
                raise CircuitError("zext requires an explicit output width")
            if width <= operands[0].width:
                raise CircuitError(
                    f"zext output width {width} must exceed input width "
                    f"{operands[0].width}"
                )
            implied = width
        else:
            raise CircuitError(f"cannot determine output width for {kind.value}")
        if width is not None and width != implied:
            raise CircuitError(
                f"{kind.value} output width {width} conflicts with implied "
                f"width {implied}"
            )
        return implied

    # ------------------------------------------------------------------
    # Outputs and queries
    # ------------------------------------------------------------------
    def mark_output(self, name: str, net: Net) -> None:
        """Expose a net as a named circuit output."""
        if name in self.outputs:
            raise CircuitError(f"duplicate output name {name!r}")
        self.outputs[name] = net

    @property
    def is_combinational(self) -> bool:
        """True when the circuit contains no registers."""
        return not self.registers

    def topological_nodes(self) -> List[Node]:
        """Nodes in dependency order (operands before users).

        Register outputs are treated as sources (their next-state operand
        does not create a combinational dependency), so a well-formed
        sequential circuit always has a topological order; a combinational
        cycle raises :class:`CircuitError`.

        The order is memoized per node count — incremental consumers
        (BMC frame extension re-levelizes per frame) would otherwise
        repeat the full DFS many times per circuit.  A fresh list is
        returned on every call so callers may mutate their copy.
        """
        cached = self._topo_cache
        if cached is not None and cached[0] == len(self.nodes):
            return list(cached[1])
        order: List[Node] = []
        state = bytearray(len(self.nodes))  # 0 unvisited, 1 on stack, 2 done
        for root in self.nodes:
            if state[root.index]:
                continue
            stack: List[Tuple[Node, int]] = [(root, 0)]
            state[root.index] = 1
            while stack:
                node, position = stack[-1]
                deps = () if node.kind is OpKind.REG else node.operands
                if position < len(deps):
                    stack[-1] = (node, position + 1)
                    dep = deps[position].driver
                    if dep is None:
                        raise CircuitError(
                            f"net {deps[position].name!r} has no driver"
                        )
                    if state[dep.index] == 1:
                        raise CircuitError(
                            f"combinational cycle through {dep.output.name!r}"
                        )
                    if state[dep.index] == 0:
                        state[dep.index] = 1
                        stack.append((dep, 0))
                else:
                    state[node.index] = 2
                    order.append(node)
                    stack.pop()
        self._topo_cache = (len(self.nodes), order)
        return list(order)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`CircuitError`."""
        for net in self.nets:
            if net.driver is None:
                raise CircuitError(f"net {net.name!r} has no driver")
        for node in self.registers:
            if not node.operands:
                raise CircuitError(
                    f"register {node.output.name!r} has no next-state input"
                )
        self.topological_nodes()
        for name, net in self.outputs.items():
            if self.nets[net.index] is not net:
                raise CircuitError(f"output {name!r} references a foreign net")

    def stats(self) -> CircuitStats:
        """Operator census in the categories the paper's tables report.

        The paper counts comparison predicates, muxes and arithmetic as
        "Arith ops" (word operations) and pure Boolean gates as "Bool ops".
        """
        arith = 0
        boolean = 0
        predicates = 0
        for node in self.nodes:
            if node.kind in PREDICATE_KINDS:
                arith += 1
                predicates += 1
            elif node.kind in WORD_KINDS:
                arith += 1
            elif node.kind in BOOLEAN_KINDS:
                boolean += 1
        return CircuitStats(
            arith_ops=arith,
            bool_ops=boolean,
            predicates=predicates,
            inputs=len(self.inputs),
            registers=len(self.registers),
            nets=len(self.nets),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, {len(self.nodes)} nodes, "
            f"{len(self.nets)} nets)"
        )


def iter_fanin_cone(nets: Iterable[Net]) -> List[Net]:
    """Transitive fan-in cone of ``nets`` (including them), as a list.

    Register outputs terminate the traversal (they are state sources for
    a single time frame).
    """
    seen: Dict[int, Net] = {}
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net.index in seen:
            continue
        seen[net.index] = net
        driver = net.driver
        if driver is None or driver.kind is OpKind.REG:
            continue
        stack.extend(driver.operands)
    return list(seen.values())
