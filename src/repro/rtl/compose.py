"""Circuit composition: copying circuits into one another.

The building block for miters (equivalence checking) and product
machines: copy a source circuit into a target namespace, optionally
sharing primary inputs by name.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import CircuitError
from repro.rtl.circuit import Circuit, Net
from repro.rtl.types import OpKind


def copy_into(
    target: Circuit,
    source: Circuit,
    prefix: str = "",
    share_inputs: bool = True,
) -> Dict[str, Net]:
    """Copy ``source`` into ``target``; returns source-net-name -> copy.

    Primary inputs are shared by name when ``share_inputs`` is set (the
    miter convention: both sides see the same stimulus); a shared input
    must agree on width.  Every other net is created under ``prefix``.
    Output aliases of the source are *not* re-marked on the target — the
    returned map lets the caller wire them up explicitly.
    """
    mapping: Dict[int, Net] = {}
    for node in source.topological_nodes():
        net = node.output
        name = f"{prefix}{net.name}"
        if node.kind is OpKind.INPUT:
            if share_inputs:
                if target.has_net(net.name):
                    shared = target.net(net.name)
                    if shared.width != net.width:
                        raise CircuitError(
                            f"shared input {net.name!r} width mismatch: "
                            f"{shared.width} vs {net.width}"
                        )
                    mapping[net.index] = shared
                    continue
                mapping[net.index] = target.add_input(net.name, net.width)
            else:
                mapping[net.index] = target.add_input(name, net.width)
        elif node.kind is OpKind.CONST:
            mapping[net.index] = target.add_const(
                node.const_value or 0, net.width, name
            )
        elif node.kind is OpKind.REG:
            mapping[net.index] = target.add_register(
                name, net.width, node.init_value or 0
            )
        else:
            operands = [mapping[operand.index] for operand in node.operands]
            attrs = {}
            if node.factor is not None:
                attrs["factor"] = node.factor
            if node.shift_amount is not None:
                attrs["shift_amount"] = node.shift_amount
            if node.extract_lo is not None:
                attrs["extract_lo"] = node.extract_lo
            if node.extract_hi is not None:
                attrs["extract_hi"] = node.extract_hi
            mapping[net.index] = target.add_node(
                node.kind, operands, width=net.width, name=name, **attrs
            )
    # Second pass: register next-state connections.
    for node in source.registers:
        if node.operands:
            target.set_register_next(
                mapping[node.output.index],
                mapping[node.operands[0].index],
            )
    return {net.name: mapping[net.index] for net in source.nets}
