"""Operator kinds and classification helpers for the RTL netlist IR.

The operator set follows Section 2.1 of the paper: Boolean gates, linear
arithmetic (`+`, `-`, multiplication by constant), the comparison
predicates ``{<, >, ==, <=, >=, !=}``, and the "non-linear" structural
operators (concatenation, extraction, shifts by constants, extensions)
that the paper models through auxiliary variables.
"""

from __future__ import annotations

import enum


class OpKind(enum.Enum):
    """Every node kind a :class:`~repro.rtl.circuit.Circuit` can contain."""

    # Sources.
    INPUT = "input"
    CONST = "const"
    REG = "reg"

    # Boolean gates (all operands and the output have width 1).
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"

    # Word-level operators.
    MUX = "mux"          # operands: sel (1 bit), then_value, else_value
    ADD = "add"          # modulo 2**width
    SUB = "sub"          # modulo 2**width
    MULC = "mulc"        # multiplication by a constant, modulo 2**width
    SHL = "shl"          # left shift by constant, modulo 2**width
    SHR = "shr"          # logical right shift by constant
    CONCAT = "concat"    # operands: hi, lo
    EXTRACT = "extract"  # bit slice [lo_bit .. hi_bit]
    ZEXT = "zext"        # zero extension to a wider word

    # Comparison predicates (word operands, 1-bit output).
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


#: Boolean gate kinds; operands and outputs are all 1-bit.
BOOLEAN_KINDS = frozenset(
    {
        OpKind.BUF,
        OpKind.NOT,
        OpKind.AND,
        OpKind.OR,
        OpKind.XOR,
        OpKind.XNOR,
        OpKind.NAND,
        OpKind.NOR,
    }
)

#: Comparison predicates: the word/Boolean boundary of Section 2.1
#: ("all operations in RTL that return a Boolean value and interact with
#: data-path are treated as predicates").
PREDICATE_KINDS = frozenset(
    {OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE}
)

#: Word-level (datapath) operator kinds.
WORD_KINDS = frozenset(
    {
        OpKind.MUX,
        OpKind.ADD,
        OpKind.SUB,
        OpKind.MULC,
        OpKind.SHL,
        OpKind.SHR,
        OpKind.CONCAT,
        OpKind.EXTRACT,
        OpKind.ZEXT,
    }
)

#: Kinds that are *justifiable* in the sense of Definition 4.1: the output
#: cannot always be determined from the inputs alone because a Boolean
#: input selects among datapath alternatives (rule 2), or the gate is an
#: atomic Boolean operator with controlling values (rule 1).
JUSTIFIABLE_WORD_KINDS = frozenset({OpKind.MUX})

#: Kinds whose output is determined solely by constraint propagation
#: (Definition 4.1's "not justifiable" list).
NON_JUSTIFIABLE_WORD_KINDS = WORD_KINDS - JUSTIFIABLE_WORD_KINDS

#: Commutative two-operand kinds (used by structural hashing and netlist
#: canonicalisation).
COMMUTATIVE_KINDS = frozenset(
    {
        OpKind.AND,
        OpKind.OR,
        OpKind.XOR,
        OpKind.XNOR,
        OpKind.NAND,
        OpKind.NOR,
        OpKind.ADD,
        OpKind.EQ,
        OpKind.NE,
    }
)


def is_boolean_gate(kind: OpKind) -> bool:
    """True for pure Boolean gates (1-bit in, 1-bit out)."""
    return kind in BOOLEAN_KINDS


def is_predicate(kind: OpKind) -> bool:
    """True for comparison predicates bridging datapath to control."""
    return kind in PREDICATE_KINDS


def is_word_op(kind: OpKind) -> bool:
    """True for datapath operators producing word results."""
    return kind in WORD_KINDS


def arity(kind: OpKind) -> int:
    """Number of net operands a node of this kind takes.

    ``-1`` means variadic (AND/OR/... accept two or more operands).
    """
    if kind in (OpKind.INPUT, OpKind.CONST):
        return 0
    if kind in (OpKind.BUF, OpKind.NOT, OpKind.MULC, OpKind.SHL, OpKind.SHR,
                OpKind.EXTRACT, OpKind.ZEXT, OpKind.REG):
        return 1
    if kind is OpKind.MUX:
        return 3
    if kind in (OpKind.XOR, OpKind.XNOR, OpKind.SUB, OpKind.CONCAT) or kind in PREDICATE_KINDS:
        return 2
    if kind is OpKind.ADD:
        return 2
    # Variadic Boolean gates.
    return -1
