"""Structural analyses: level ordering and cones of influence.

Section 3 of the paper level-orders the circuit by distance from the
primary inputs and probes learning candidates "starting with the gate with
the lowest level"; Section 4's justification heuristics use distance from
the inputs as a tie-breaker.  These helpers provide that structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.rtl.circuit import Circuit, Net, Node
from repro.rtl.types import OpKind

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(bits: int) -> int:
        return bin(bits).count("1")


def levelize(circuit: Circuit) -> Dict[int, int]:
    """Level of every net, keyed by net index.

    Primary inputs, constants and register outputs are level 0; every
    other net is one more than the maximum level of its node's operands.
    """
    levels: Dict[int, int] = {}
    for node in circuit.topological_nodes():
        if node.kind in (OpKind.INPUT, OpKind.CONST, OpKind.REG):
            levels[node.output.index] = 0
        else:
            levels[node.output.index] = 1 + max(
                levels[operand.index] for operand in node.operands
            )
    return levels


def max_level(circuit: Circuit) -> int:
    """Depth of the circuit (0 for source-only circuits)."""
    levels = levelize(circuit)
    return max(levels.values(), default=0)


def fanin_cone_nodes(roots: Iterable[Net]) -> Set[Node]:
    """All nodes in the transitive fan-in of ``roots``.

    Register outputs terminate the walk (single time-frame semantics).
    """
    cone: Set[Node] = set()
    stack: List[Net] = list(roots)
    while stack:
        net = stack.pop()
        driver = net.driver
        if driver is None or driver in cone:
            continue
        cone.add(driver)
        if driver.kind is not OpKind.REG:
            stack.extend(driver.operands)
    return cone


def fanout_cone_nodes(roots: Iterable[Net]) -> Set[Node]:
    """All nodes in the transitive fan-out of ``roots``."""
    cone: Set[Node] = set()
    stack: List[Net] = list(roots)
    while stack:
        net = stack.pop()
        for user in net.fanouts:
            if user in cone or user.kind is OpKind.REG:
                continue
            cone.add(user)
            stack.append(user.output)
    return cone


def transitive_fanout_count(net: Net) -> int:
    """Number of nodes transitively driven by ``net``.

    This is the "original fanout" weight of the HDPLL decision heuristic
    ([9]: "picked based on an exponentially decaying function based on its
    original fanout").
    """
    return len(fanout_cone_nodes([net]))


def transitive_fanout_counts(
    circuit: Circuit, roots: Iterable[Net]
) -> Dict[int, int]:
    """``{net.index: transitive_fanout_count(net)}`` for many roots.

    Cones overlap, so their sizes are not additive; each node's cone is
    kept as a big-int bitset (bit = node index) and unioned over its
    fanout users in one reverse-topological pass — O(edges) bitset ORs
    instead of one full graph walk per root.  Registers terminate cones
    exactly as in :func:`fanout_cone_nodes`, so the counts are equal to
    the per-net walk's.
    """
    cone_bits: Dict[int, int] = {}
    for node in reversed(circuit.topological_nodes()):
        if node.kind is OpKind.REG:
            continue
        bits = 1 << node.index
        for user in node.output.fanouts:
            if user.kind is not OpKind.REG:
                bits |= cone_bits[user.index]
        cone_bits[node.index] = bits
    counts: Dict[int, int] = {}
    for net in roots:
        bits = 0
        for user in net.fanouts:
            if user.kind is not OpKind.REG:
                bits |= cone_bits[user.index]
        counts[net.index] = _popcount(bits)
    return counts


def nets_by_level(circuit: Circuit) -> List[Net]:
    """All driven nets ordered by (level, net index): lowest level first."""
    levels = levelize(circuit)
    return sorted(
        (net for net in circuit.nets if net.index in levels),
        key=lambda net: (levels[net.index], net.index),
    )
