"""Netlist optimisation: constant folding, CSE, dead-node removal.

A light rewriting pass producing a fresh, behaviourally equivalent
circuit — both a useful library feature and the natural workload for
the equivalence checker (the paper's Section 6 points at exactly this
duplicated-datapath scenario for future predicate-learning work).

Rules applied, in one topological pass:

* **constant folding** — operators with all-constant operands evaluate;
* **algebraic identities** — ``x+0``, ``x-0``, ``x*1``, ``x<<0``,
  ``mux(c, a, a)``, ``mux(1, a, b)``, AND/OR with constant inputs,
  double negation, comparator with identical operands;
* **structural hashing (CSE)** — syntactically identical nodes merge
  (commutative operands are canonicalised first);
* **dead-node removal** — only the cone of the outputs (and register
  next-state functions) is rebuilt.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rtl.circuit import Circuit, Net, Node
from repro.rtl.simulate import evaluate_node
from repro.rtl.types import (
    BOOLEAN_KINDS,
    COMMUTATIVE_KINDS,
    PREDICATE_KINDS,
    OpKind,
)


class _Optimizer:
    def __init__(self, source: Circuit):
        source.validate()
        self.source = source
        self.target = Circuit(f"{source.name}_opt")
        #: source net index -> rebuilt net.
        self.mapping: Dict[int, Net] = {}
        #: structural-hash key -> existing rebuilt net.
        self.hashes: Dict[Tuple, Net] = {}
        #: value -> constant net cache (per width).
        self.constants: Dict[Tuple[int, int], Net] = {}

    # ------------------------------------------------------------------
    def run(self) -> Circuit:
        # Rebuild only what outputs and register next-states reach
        # (dead nodes are never requested).  Primary inputs are anchored
        # unconditionally: the port interface is part of the contract
        # even when an input is functionally dead.
        for net in self.source.inputs:
            self._rebuild(net)
        for node in self.source.registers:
            self._rebuild(node.output)
        for net in self.source.outputs.values():
            self._rebuild(net)
        for node in self.source.registers:
            self.target.set_register_next(
                self.mapping[node.output.index],
                self._rebuild(node.operands[0]),
            )
        for alias, net in self.source.outputs.items():
            self.target.mark_output(alias, self.mapping[net.index])
        self.target.validate()
        return self.target

    # ------------------------------------------------------------------
    def _const(self, value: int, width: int) -> Net:
        key = (value, width)
        if key not in self.constants:
            self.constants[key] = self.target.add_const(value, width)
        return self.constants[key]

    def _const_value(self, net: Net) -> Optional[int]:
        driver = net.driver
        if driver is not None and driver.kind is OpKind.CONST:
            return driver.const_value
        return None

    def _rebuild(self, net: Net) -> Net:
        if net.index in self.mapping:
            return self.mapping[net.index]
        node = net.driver
        assert node is not None
        rebuilt = self._rebuild_node(node)
        self.mapping[net.index] = rebuilt
        return rebuilt

    def _rebuild_node(self, node: Node) -> Net:
        kind = node.kind
        net = node.output
        if kind is OpKind.INPUT:
            return self.target.add_input(net.name, net.width)
        if kind is OpKind.CONST:
            return self._const(node.const_value or 0, net.width)
        if kind is OpKind.REG:
            return self.target.add_register(
                net.name, net.width, node.init_value or 0
            )
        operands = [self._rebuild(operand) for operand in node.operands]

        folded = self._try_fold(node, operands)
        if folded is not None:
            return folded
        simplified = self._try_identities(node, operands)
        if simplified is not None:
            return simplified
        return self._hashed_node(node, operands)

    # ------------------------------------------------------------------
    def _try_fold(self, node: Node, operands: List[Net]) -> Optional[Net]:
        values = [self._const_value(operand) for operand in operands]
        if any(value is None for value in values):
            return None
        result = evaluate_node(node, values)  # type: ignore[arg-type]
        return self._const(result, node.output.width)

    def _try_identities(
        self, node: Node, operands: List[Net]
    ) -> Optional[Net]:
        kind = node.kind
        width = node.output.width
        values = [self._const_value(operand) for operand in operands]

        if kind is OpKind.MUX:
            sel_value, then_net, else_net = values[0], operands[1], operands[2]
            if sel_value is not None:
                return then_net if sel_value else else_net
            if then_net is else_net:
                return then_net
        if kind in (OpKind.ADD, OpKind.SUB):
            if values[1] == 0:
                return operands[0]
            if kind is OpKind.ADD and values[0] == 0:
                return operands[1]
        if kind is OpKind.MULC:
            if node.factor == 1:
                return operands[0]
            if node.factor == 0:
                return self._const(0, width)
        if kind in (OpKind.SHL, OpKind.SHR) and node.shift_amount == 0:
            return operands[0]
        if kind is OpKind.EXTRACT:
            if (
                node.extract_lo == 0
                and node.extract_hi == node.operands[0].width - 1
            ):
                return operands[0]
        if kind in (OpKind.AND, OpKind.OR):
            controlling = 0 if kind is OpKind.AND else 1
            if controlling in values:
                return self._const(controlling, 1)
            live = [
                operand
                for operand, value in zip(operands, values)
                if value is None
            ]
            # Duplicate operands collapse.
            unique: List[Net] = []
            for operand in live:
                if operand not in unique:
                    unique.append(operand)
            if not unique:
                return self._const(1 - controlling, 1)
            if len(unique) == 1:
                return unique[0]
            if len(unique) < len(operands):
                return self._hashed_kind(kind, unique, width, node)
        if kind is OpKind.NOT:
            inner = operands[0].driver
            if inner is not None and inner.kind is OpKind.NOT:
                return inner.operands[0]
        if kind is OpKind.BUF:
            return operands[0]
        if kind in PREDICATE_KINDS and operands[0] is operands[1]:
            constant_result = {
                OpKind.EQ: 1,
                OpKind.LE: 1,
                OpKind.GE: 1,
                OpKind.NE: 0,
                OpKind.LT: 0,
                OpKind.GT: 0,
            }[kind]
            return self._const(constant_result, 1)
        if kind in (OpKind.XOR, OpKind.XNOR) and operands[0] is operands[1]:
            return self._const(0 if kind is OpKind.XOR else 1, 1)
        return None

    # ------------------------------------------------------------------
    def _hash_key(self, node: Node, operands: List[Net]) -> Tuple:
        indices = [operand.index for operand in operands]
        if node.kind in COMMUTATIVE_KINDS:
            indices = sorted(indices)
        return (
            node.kind,
            tuple(indices),
            node.factor,
            node.shift_amount,
            node.extract_lo,
            node.extract_hi,
            node.output.width,
        )

    def _hashed_node(self, node: Node, operands: List[Net]) -> Net:
        key = self._hash_key(node, operands)
        if key in self.hashes:
            return self.hashes[key]
        attrs = {}
        if node.factor is not None:
            attrs["factor"] = node.factor
        if node.shift_amount is not None:
            attrs["shift_amount"] = node.shift_amount
        if node.extract_lo is not None:
            attrs["extract_lo"] = node.extract_lo
        if node.extract_hi is not None:
            attrs["extract_hi"] = node.extract_hi
        rebuilt = self.target.add_node(
            node.kind,
            operands,
            width=node.output.width,
            name=(
                node.output.name
                if not self.target.has_net(node.output.name)
                else None
            ),
            **attrs,
        )
        self.hashes[key] = rebuilt
        return rebuilt

    def _hashed_kind(
        self, kind: OpKind, operands: List[Net], width: int, origin: Node
    ) -> Net:
        key = (
            kind,
            tuple(sorted(operand.index for operand in operands))
            if kind in COMMUTATIVE_KINDS
            else tuple(operand.index for operand in operands),
            None,
            None,
            None,
            None,
            width,
        )
        if key in self.hashes:
            return self.hashes[key]
        rebuilt = self.target.add_node(kind, operands, width=width)
        self.hashes[key] = rebuilt
        return rebuilt


def optimize(circuit: Circuit) -> Circuit:
    """Produce an optimised, behaviourally equivalent copy of ``circuit``.

    Two rewriting passes: identity bypasses in the first pass can leave
    the bypassed node orphaned (it was materialised while rebuilding its
    user's operands); the second pass rebuilds only the live cone, which
    drops the orphans and may expose further folding.
    """
    once = _Optimizer(circuit).run()
    twice = _Optimizer(once).run()
    twice.name = f"{circuit.name}_opt"
    return twice
