"""Plain-text netlist serialisation.

A small line-oriented format so circuits can be saved, diffed and loaded
without pickling.  One declaration per line::

    circuit b04_fragment
    input  w0 3
    const  k5 3 5
    reg    r0 3 init=2
    node   p1 lt 1 w0 k5
    node   m1 mux 3 p1 w0 k5
    node   e1 extract 2 w0 lo=0 hi=1
    next   r0 m1
    output out m1

Widths are explicit everywhere; attribute arguments use ``key=value``.
The format round-trips: ``load(save(circuit))`` reproduces an isomorphic
circuit (same names, kinds, attributes, connectivity).
"""

from __future__ import annotations

import io
from typing import Dict, List, TextIO, Union

from repro.errors import NetlistFormatError
from repro.rtl.circuit import Circuit, Net
from repro.rtl.types import OpKind

_ATTR_FIELDS = {
    "factor": "factor",
    "shift": "shift_amount",
    "lo": "extract_lo",
    "hi": "extract_hi",
}


def save(circuit: Circuit, stream: Union[TextIO, None] = None) -> str:
    """Serialise ``circuit``; returns the text (and writes to ``stream``)."""
    out = io.StringIO()
    out.write(f"circuit {circuit.name}\n")
    for node in circuit.topological_nodes():
        net = node.output
        if node.kind is OpKind.INPUT:
            out.write(f"input {net.name} {net.width}\n")
        elif node.kind is OpKind.CONST:
            out.write(f"const {net.name} {net.width} {node.const_value}\n")
        elif node.kind is OpKind.REG:
            out.write(f"reg {net.name} {net.width} init={node.init_value}\n")
        else:
            operands = " ".join(op.name for op in node.operands)
            attrs = []
            if node.factor is not None:
                attrs.append(f"factor={node.factor}")
            if node.shift_amount is not None:
                attrs.append(f"shift={node.shift_amount}")
            if node.extract_lo is not None:
                attrs.append(f"lo={node.extract_lo}")
            if node.extract_hi is not None:
                attrs.append(f"hi={node.extract_hi}")
            suffix = (" " + " ".join(attrs)) if attrs else ""
            out.write(
                f"node {net.name} {node.kind.value} {net.width} "
                f"{operands}{suffix}\n"
            )
    for node in circuit.registers:
        if node.operands:
            out.write(f"next {node.output.name} {node.operands[0].name}\n")
    for name, net in circuit.outputs.items():
        out.write(f"output {name} {net.name}\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def load(source: Union[str, TextIO]) -> Circuit:
    """Parse a circuit from text or a text stream."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = source
    circuit = Circuit()
    seen_circuit_line = False

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        try:
            if keyword == "circuit":
                _expect(len(tokens) == 2, line_number, "circuit takes one name")
                circuit.name = tokens[1]
                seen_circuit_line = True
            elif keyword == "input":
                _expect(len(tokens) == 3, line_number, "input NAME WIDTH")
                circuit.add_input(tokens[1], int(tokens[2]))
            elif keyword == "const":
                _expect(len(tokens) == 4, line_number, "const NAME WIDTH VALUE")
                circuit.add_const(int(tokens[3]), int(tokens[2]), tokens[1])
            elif keyword == "reg":
                _expect(
                    len(tokens) == 4 and tokens[3].startswith("init="),
                    line_number,
                    "reg NAME WIDTH init=VALUE",
                )
                circuit.add_register(
                    tokens[1], int(tokens[2]), int(tokens[3][5:])
                )
            elif keyword == "node":
                _parse_node(circuit, tokens, line_number)
            elif keyword == "next":
                _expect(len(tokens) == 3, line_number, "next REG NET")
                circuit.set_register_next(
                    circuit.net(tokens[1]), circuit.net(tokens[2])
                )
            elif keyword == "output":
                _expect(len(tokens) == 3, line_number, "output NAME NET")
                circuit.mark_output(tokens[1], circuit.net(tokens[2]))
            else:
                raise NetlistFormatError(
                    f"line {line_number}: unknown keyword {keyword!r}"
                )
        except NetlistFormatError:
            raise
        except Exception as exc:
            raise NetlistFormatError(f"line {line_number}: {exc}") from exc

    if not seen_circuit_line:
        raise NetlistFormatError("missing 'circuit' header line")
    circuit.validate()
    return circuit


def _expect(condition: bool, line_number: int, message: str) -> None:
    if not condition:
        raise NetlistFormatError(f"line {line_number}: expected {message}")


def _parse_node(circuit: Circuit, tokens: List[str], line_number: int) -> None:
    _expect(len(tokens) >= 4, line_number, "node NAME KIND WIDTH [OPERANDS...]")
    name, kind_text, width_text = tokens[1], tokens[2], tokens[3]
    try:
        kind = OpKind(kind_text)
    except ValueError:
        raise NetlistFormatError(
            f"line {line_number}: unknown operator {kind_text!r}"
        ) from None
    operands: List[Net] = []
    attrs: Dict[str, int] = {}
    for token in tokens[4:]:
        if "=" in token:
            key, _, value = token.partition("=")
            if key not in _ATTR_FIELDS:
                raise NetlistFormatError(
                    f"line {line_number}: unknown attribute {key!r}"
                )
            attrs[_ATTR_FIELDS[key]] = int(value)
        else:
            operands.append(circuit.net(token))
    circuit.add_node(kind, operands, width=int(width_text), name=name, **attrs)


def save_to_path(circuit: Circuit, path: str) -> None:
    """Write a circuit to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        save(circuit, handle)


def load_from_path(path: str) -> Circuit:
    """Read a circuit from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return load(handle)
