"""Fluent construction API over the netlist IR.

``CircuitBuilder`` provides the operator vocabulary of the paper with
width checking and light constant folding, so benchmark circuits and
tests read like RTL:

    b = CircuitBuilder("demo")
    a = b.input("a", 8)
    limit = b.const(100, 8)
    over = b.gt(a, limit)
    clipped = b.mux(over, limit, a)
    b.output("out", clipped)
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import CircuitError
from repro.rtl.circuit import Circuit, Net
from repro.rtl.types import OpKind

NetOrInt = Union[Net, int]


class CircuitBuilder:
    """Thin, ergonomic wrapper around :class:`Circuit`."""

    def __init__(self, name: str = "circuit"):
        self.circuit = Circuit(name)

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def input(self, name: str, width: int = 1) -> Net:
        """Declare a primary input of the given width."""
        return self.circuit.add_input(name, width)

    def const(self, value: int, width: int, name: Optional[str] = None) -> Net:
        """A constant net holding ``value`` in ``width`` bits."""
        return self.circuit.add_const(value, width, name)

    def register(self, name: str, width: int, init: int = 0) -> Net:
        """Declare a register (connect its next state with :meth:`next_state`)."""
        return self.circuit.add_register(name, width, init)

    def next_state(self, reg: Net, value: NetOrInt) -> None:
        """Connect a register's next-state function."""
        self.circuit.set_register_next(reg, self._coerce(value, reg.width))

    def _coerce(self, value: NetOrInt, width: int) -> Net:
        """Accept a literal integer wherever a net is expected."""
        if isinstance(value, Net):
            return value
        return self.circuit.add_const(value, width)

    def _coerce_pair(self, a: NetOrInt, b: NetOrInt) -> "tuple[Net, Net]":
        if isinstance(a, Net):
            return a, self._coerce(b, a.width)
        if isinstance(b, Net):
            return self._coerce(a, b.width), b
        raise CircuitError("at least one operand must be a net")

    # ------------------------------------------------------------------
    # Boolean gates
    # ------------------------------------------------------------------
    def not_(self, a: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.NOT, (a,), name=name)

    def and_(self, *operands: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.AND, operands, name=name)

    def or_(self, *operands: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.OR, operands, name=name)

    def nand(self, *operands: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.NAND, operands, name=name)

    def nor(self, *operands: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.NOR, operands, name=name)

    def xor(self, a: Net, b: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.XOR, (a, b), name=name)

    def xnor(self, a: Net, b: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.XNOR, (a, b), name=name)

    def buf(self, a: Net, name: Optional[str] = None) -> Net:
        return self.circuit.add_node(OpKind.BUF, (a,), name=name)

    # ------------------------------------------------------------------
    # Word-level operators
    # ------------------------------------------------------------------
    def mux(
        self,
        sel: Net,
        then_value: NetOrInt,
        else_value: NetOrInt,
        name: Optional[str] = None,
    ) -> Net:
        """``sel ? then_value : else_value``."""
        then_net, else_net = self._coerce_pair(then_value, else_value)
        return self.circuit.add_node(
            OpKind.MUX, (sel, then_net, else_net), name=name
        )

    def add(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        """Modular addition: ``(a + b) mod 2**width``."""
        a_net, b_net = self._coerce_pair(a, b)
        return self.circuit.add_node(OpKind.ADD, (a_net, b_net), name=name)

    def sub(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        """Modular subtraction: ``(a - b) mod 2**width``."""
        a_net, b_net = self._coerce_pair(a, b)
        return self.circuit.add_node(OpKind.SUB, (a_net, b_net), name=name)

    def mul_const(self, a: Net, factor: int, name: Optional[str] = None) -> Net:
        """Multiplication by a non-negative constant, modulo ``2**width``."""
        if factor < 0:
            raise CircuitError("mul_const factor must be non-negative")
        return self.circuit.add_node(OpKind.MULC, (a,), name=name, factor=factor)

    def shl(self, a: Net, amount: int, name: Optional[str] = None) -> Net:
        """Left shift by a constant, modulo ``2**width``."""
        return self.circuit.add_node(
            OpKind.SHL, (a,), name=name, shift_amount=amount
        )

    def shr(self, a: Net, amount: int, name: Optional[str] = None) -> Net:
        """Logical right shift by a constant."""
        return self.circuit.add_node(
            OpKind.SHR, (a,), name=name, shift_amount=amount
        )

    def concat(self, hi: Net, lo: Net, name: Optional[str] = None) -> Net:
        """Bit-vector concatenation ``{hi, lo}``."""
        return self.circuit.add_node(OpKind.CONCAT, (hi, lo), name=name)

    def extract(
        self, a: Net, hi_bit: int, lo_bit: int, name: Optional[str] = None
    ) -> Net:
        """Bit slice ``a[hi_bit : lo_bit]`` (both inclusive)."""
        return self.circuit.add_node(
            OpKind.EXTRACT, (a,), name=name, extract_lo=lo_bit, extract_hi=hi_bit
        )

    def zext(self, a: Net, width: int, name: Optional[str] = None) -> Net:
        """Zero extension of ``a`` to ``width`` bits."""
        return self.circuit.add_node(OpKind.ZEXT, (a,), width=width, name=name)

    def inc(self, a: Net, by: int = 1, name: Optional[str] = None) -> Net:
        """Convenience: ``(a + by) mod 2**width``."""
        return self.add(a, self.const(by % (1 << a.width), a.width), name=name)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _predicate(
        self, kind: OpKind, a: NetOrInt, b: NetOrInt, name: Optional[str]
    ) -> Net:
        a_net, b_net = self._coerce_pair(a, b)
        return self.circuit.add_node(kind, (a_net, b_net), name=name)

    def eq(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self._predicate(OpKind.EQ, a, b, name)

    def ne(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self._predicate(OpKind.NE, a, b, name)

    def lt(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self._predicate(OpKind.LT, a, b, name)

    def le(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self._predicate(OpKind.LE, a, b, name)

    def gt(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self._predicate(OpKind.GT, a, b, name)

    def ge(self, a: NetOrInt, b: NetOrInt, name: Optional[str] = None) -> Net:
        return self._predicate(OpKind.GE, a, b, name)

    # ------------------------------------------------------------------
    # Structured helpers
    # ------------------------------------------------------------------
    def select(
        self,
        selector: Net,
        cases: Sequence["tuple[int, NetOrInt]"],
        default: NetOrInt,
        width: Optional[int] = None,
    ) -> Net:
        """A case statement: a chain of (selector == value) muxes.

        This is how FSM next-state logic is written; it produces exactly
        the predicate/mux structure the paper's techniques target.
        ``width`` is only needed when every branch is an integer literal.
        """
        if not isinstance(default, Net):
            if width is None:
                width = next(
                    (b.width for _, b in cases if isinstance(b, Net)), None
                )
            if width is None:
                raise CircuitError(
                    "select needs a net branch or an explicit width"
                )
            default = self.const(default, width)
        result: Net = default
        for value, branch in reversed(list(cases)):
            cond = self.eq(selector, self.const(value, selector.width))
            branch_net = self._coerce(branch, result.width)
            result = self.circuit.add_node(
                OpKind.MUX, (cond, branch_net, result)
            )
        return result

    def output(self, name: str, net: Net) -> Net:
        """Mark ``net`` as a named output and return it."""
        self.circuit.mark_output(name, net)
        return net

    def build(self) -> Circuit:
        """Validate and return the finished circuit."""
        self.circuit.validate()
        return self.circuit
